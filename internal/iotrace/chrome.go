// Chrome trace-event export: the merged journal rendered as the JSON
// format Perfetto and chrome://tracing load. The writer is hand-rolled
// and fully deterministic — fixed field order, no maps, events in
// journal order — so the exported bytes are identical at any shard or
// worker count whenever the journal is.
package iotrace

import (
	"bufio"
	"io"
	"strconv"
)

// WriteChrome renders events (already merged and ordered) as Chrome
// trace-event JSON: {"traceEvents":[...]}. Spans become "X" complete
// events with ts at the span start; instants become zero-duration "X"
// events so every stage renders as a slice. pid is the node, tid the
// request journey (0 collects untagged system I/O). Metadata records
// name each node's track.
func WriteChrome(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	var scratch [24]byte
	first := true
	var seen [256]bool
	for _, ev := range events {
		if !seen[ev.Node] {
			seen[ev.Node] = true
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString(`{"name":"process_name","ph":"M","pid":`)
			bw.Write(strconv.AppendUint(scratch[:0], uint64(ev.Node), 10))
			bw.WriteString(`,"tid":0,"args":{"name":"node `)
			bw.Write(strconv.AppendUint(scratch[:0], uint64(ev.Node), 10))
			bw.WriteString(`"}}`)
		}
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString(`{"name":"`)
		bw.WriteString(ev.Stage.String())
		bw.WriteString(`","cat":"io","ph":"X","ts":`)
		bw.Write(strconv.AppendInt(scratch[:0], int64(ev.Start()), 10))
		bw.WriteString(`,"dur":`)
		bw.Write(strconv.AppendInt(scratch[:0], int64(ev.Dur), 10))
		bw.WriteString(`,"pid":`)
		bw.Write(strconv.AppendUint(scratch[:0], uint64(ev.Node), 10))
		bw.WriteString(`,"tid":`)
		bw.Write(strconv.AppendUint(scratch[:0], ev.Req, 10))
		bw.WriteString(`,"args":{"arg":`)
		bw.Write(strconv.AppendInt(scratch[:0], ev.Arg, 10))
		bw.WriteString(`,"seq":`)
		bw.Write(strconv.AppendUint(scratch[:0], uint64(ev.Seq), 10))
		bw.WriteString(`}}`)
	}
	bw.WriteString(`]}`)
	return bw.Flush()
}
