// Package pious implements a PIOUS-style parallel file system for the
// simulated cluster (Moyer & Sunderam's PIOUS was the parallel I/O system
// available on the Beowulf prototype). Files are declustered round-robin in
// fixed stripe units across per-node data servers; clients address the
// ensemble through PVM messages, and each server performs ordinary local
// filesystem I/O on its segment file — so parallel-file traffic shows up in
// every node's disk trace.
package pious

import (
	"fmt"

	"essio/internal/extfs"
	"essio/internal/pvm"
	"essio/internal/sim"
	"essio/internal/vfs"
)

// DefaultStripeUnit is the declustering unit in bytes.
const DefaultStripeUnit = 8192

// Message tags used by the PIOUS protocol (reserved range).
const (
	tagRequest = 1<<29 + 1
	tagReply   = 1<<29 + 2
)

type reqKind int

const (
	reqOpen reqKind = iota
	reqIO
	reqClose
	reqStop
)

// request is the client->server message payload.
type request struct {
	kind   reqKind
	name   string
	create bool
	fileID int
	off    int64
	data   []byte // write payload (nil for reads)
	n      int    // read length
}

// reply is the server->client response payload.
type reply struct {
	n    int
	data []byte
	err  string
}

// Server is one node's PIOUS data server.
type Server struct {
	sys   *System
	node  int
	task  *pvm.Task
	table *vfs.Table
	files map[int]int // fileID -> fd
}

// System is the parallel file service: one data server per node.
type System struct {
	pv         *pvm.System
	servers    []*Server
	stripeUnit int
}

// Option configures the system.
type Option func(*System)

// WithStripeUnit overrides the declustering unit.
func WithStripeUnit(bytes int) Option {
	return func(s *System) { s.stripeUnit = bytes }
}

// New starts data servers over the given per-node filesystems. Each server
// enrolls as a PVM task on its node and serves requests on its node's own
// engine until the engine stops, so servers stay shard-local. Call from
// setup context. The segment directory /pious must be creatable on every
// node.
func New(pv *pvm.System, nodeFS []*extfs.FS, opts ...Option) *System {
	s := &System{pv: pv, stripeUnit: DefaultStripeUnit}
	for _, o := range opts {
		o(s)
	}
	if s.stripeUnit <= 0 {
		panic("pious: stripe unit must be positive")
	}
	for node, fs := range nodeFS {
		srv := &Server{
			sys: s, node: node,
			task:  pv.Enroll(node),
			table: vfs.NewTable(fs),
			files: make(map[int]int),
		}
		s.servers = append(s.servers, srv)
		srv.task.Engine().Spawn(fmt.Sprintf("pious/pds%d", node), srv.serve)
	}
	return s
}

// Servers reports the number of data servers.
func (s *System) Servers() int { return len(s.servers) }

// StripeUnit reports the declustering unit.
func (s *System) StripeUnit() int { return s.stripeUnit }

// serve is the data server loop.
func (v *Server) serve(p *sim.Proc) {
	// Ensure the segment directory exists.
	if _, err := v.table.FS().Lookup(p, "/pious"); err != nil {
		if _, err := v.table.FS().Mkdir(p, "/pious"); err != nil {
			return
		}
	}
	for {
		m := v.sys.pv.Recv(p, v.task, pvm.AnySource, tagRequest)
		req := m.Payload.(request)
		var rep reply
		switch req.kind {
		case reqStop:
			return
		case reqOpen:
			rep = v.doOpen(p, req)
		case reqIO:
			rep = v.doIO(p, req)
		case reqClose:
			if fd, ok := v.files[req.fileID]; ok {
				v.table.Close(fd)
				delete(v.files, req.fileID)
			}
		}
		respBytes := 16 + len(rep.data)
		if err := v.sys.pv.Send(v.task, m.From, tagReply, respBytes, rep); err != nil {
			return
		}
	}
}

func (v *Server) doOpen(p *sim.Proc, req request) reply {
	path := fmt.Sprintf("/pious/%s.%d", req.name, v.node)
	var fd int
	var err error
	if req.create {
		fd, err = v.table.Create(p, path)
	} else {
		fd, err = v.table.Open(p, path)
	}
	if err != nil {
		return reply{err: err.Error()}
	}
	v.files[req.fileID] = fd
	return reply{}
}

func (v *Server) doIO(p *sim.Proc, req request) reply {
	fd, ok := v.files[req.fileID]
	if !ok {
		return reply{err: fmt.Sprintf("pious: file %d not open on node %d", req.fileID, v.node)}
	}
	if _, err := v.table.Lseek(p, fd, req.off, vfs.SeekSet); err != nil {
		return reply{err: err.Error()}
	}
	if req.data != nil {
		n, err := v.table.Write(p, fd, req.data)
		if err != nil {
			return reply{n: n, err: err.Error()}
		}
		return reply{n: n}
	}
	buf := make([]byte, req.n)
	n, err := v.table.Read(p, fd, buf)
	if err != nil {
		return reply{n: n, err: err.Error()}
	}
	return reply{n: n, data: buf[:n]}
}

// File is an open parallel file handle held by one client task.
type File struct {
	sys  *System
	id   int
	name string
	pos  int64
}

// Open opens (or creates) a parallel file from client task t. The file ID
// is drawn from the client task's own sequence (unique system-wide via the
// task identifier), not a shared counter, so clients on different shards
// never touch common state.
func (s *System) Open(p *sim.Proc, t *pvm.Task, name string, create bool) (*File, error) {
	f := &File{sys: s, id: t.NextID(), name: name}
	for _, srv := range s.servers {
		req := request{kind: reqOpen, name: name, create: create, fileID: f.id}
		if err := s.pv.Send(t, srv.task.TID(), tagRequest, 64+len(name), req); err != nil {
			return nil, err
		}
	}
	for range s.servers {
		m := s.pv.Recv(p, t, pvm.AnySource, tagReply)
		rep := m.Payload.(reply)
		if rep.err != "" {
			return nil, fmt.Errorf("pious: open %q: %s", name, rep.err)
		}
	}
	return f, nil
}

// Close releases the file on all servers (fire and forget, like pvm sends).
func (f *File) Close(p *sim.Proc, t *pvm.Task) error {
	for _, srv := range f.sys.servers {
		req := request{kind: reqClose, fileID: f.id}
		if err := f.sys.pv.Send(t, srv.task.TID(), tagRequest, 32, req); err != nil {
			return err
		}
	}
	return nil
}

// stripe maps a global offset to (server index, local offset).
func (f *File) stripe(off int64) (int, int64) {
	su := int64(f.sys.stripeUnit)
	n := int64(len(f.sys.servers))
	unit := off / su
	srv := int(unit % n)
	local := (unit/n)*su + off%su
	return srv, local
}

// rangePieces splits [off, off+length) into per-server contiguous pieces.
type piece struct {
	srv      int
	localOff int64
	globOff  int64
	n        int
}

func (f *File) pieces(off int64, length int) []piece {
	var out []piece
	for length > 0 {
		srv, local := f.stripe(off)
		su := f.sys.stripeUnit
		inUnit := int(off % int64(su))
		n := su - inUnit
		if n > length {
			n = length
		}
		out = append(out, piece{srv: srv, localOff: local, globOff: off, n: n})
		off += int64(n)
		length -= n
	}
	return out
}

// WriteAt writes data at a global offset, fanning stripe pieces out to the
// data servers in parallel and waiting for all acknowledgements.
func (f *File) WriteAt(p *sim.Proc, t *pvm.Task, off int64, data []byte) (int, error) {
	ps := f.pieces(off, len(data))
	for _, pc := range ps {
		chunk := data[pc.globOff-off : pc.globOff-off+int64(pc.n)]
		req := request{kind: reqIO, fileID: f.id, off: pc.localOff, data: chunk}
		if err := f.sys.pv.Send(t, f.sys.servers[pc.srv].task.TID(), tagRequest, 48+pc.n, req); err != nil {
			return 0, err
		}
	}
	total := 0
	for range ps {
		m := f.sys.pv.Recv(p, t, pvm.AnySource, tagReply)
		rep := m.Payload.(reply)
		if rep.err != "" {
			return total, fmt.Errorf("pious: write %q: %s", f.name, rep.err)
		}
		total += rep.n
	}
	if end := off + int64(total); end > f.pos {
		f.pos = end
	}
	return total, nil
}

// ReadAt reads into buf from a global offset in parallel across servers.
// Short segment reads (holes or EOF on a server) read as zeros, keeping the
// aggregate length; the returned count is len(buf) unless an error occurs.
func (f *File) ReadAt(p *sim.Proc, t *pvm.Task, off int64, buf []byte) (int, error) {
	ps := f.pieces(off, len(buf))
	// Requests carry a sequence via globOff; replies may arrive in any
	// order, so match by server echo — simplest is one outstanding batch
	// with per-piece bookkeeping keyed by arrival order of each server's
	// FIFO channel. PVM preserves per-pair ordering, so issue and collect
	// per server in order.
	type pending struct{ pc piece }
	perServer := make(map[int][]pending)
	for _, pc := range ps {
		req := request{kind: reqIO, fileID: f.id, off: pc.localOff, n: pc.n}
		if err := f.sys.pv.Send(t, f.sys.servers[pc.srv].task.TID(), tagRequest, 48, req); err != nil {
			return 0, err
		}
		perServer[pc.srv] = append(perServer[pc.srv], pending{pc})
	}
	remaining := len(ps)
	for remaining > 0 {
		m := f.sys.pv.Recv(p, t, pvm.AnySource, tagReply)
		rep := m.Payload.(reply)
		if rep.err != "" {
			return 0, fmt.Errorf("pious: read %q: %s", f.name, rep.err)
		}
		// Identify which server answered.
		srvIdx := -1
		for i, srv := range f.sys.servers {
			if srv.task.TID() == m.From {
				srvIdx = i
				break
			}
		}
		if srvIdx < 0 || len(perServer[srvIdx]) == 0 {
			return 0, fmt.Errorf("pious: stray reply from tid %d", m.From)
		}
		pc := perServer[srvIdx][0].pc
		perServer[srvIdx] = perServer[srvIdx][1:]
		dst := buf[pc.globOff-off : pc.globOff-off+int64(pc.n)]
		for i := range dst {
			dst[i] = 0
		}
		copy(dst, rep.data)
		remaining--
	}
	return len(buf), nil
}

// Stop shuts down all data servers (end of experiment).
func (s *System) Stop(t *pvm.Task) {
	for _, srv := range s.servers {
		_ = s.pv.Send(t, srv.task.TID(), tagRequest, 16, request{kind: reqStop})
	}
}
