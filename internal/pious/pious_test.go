package pious

import (
	"bytes"
	"testing"

	"essio/internal/cluster"
	"essio/internal/pvm"
	"essio/internal/sim"
	"essio/internal/trace"
)

type rig struct {
	c   *cluster.Cluster
	sys *System
}

func newRig(t *testing.T, nodes int, opts ...Option) *rig {
	t.Helper()
	c, err := cluster.New(cluster.Config{Nodes: nodes, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	sys := New(c.PVM, c.NodeFS(), opts...)
	// Let the servers create their /pious directories.
	c.RunFor(sim.Second)
	return &rig{c: c, sys: sys}
}

// runClient executes fn as a client task on node 0 and drives the engine
// until fn finishes (bounded).
func (r *rig) runClient(t *testing.T, fn func(p *sim.Proc, task *pvm.Task)) {
	t.Helper()
	done := false
	task := r.c.PVM.Enroll(0)
	r.c.SpawnOn(0, "client", func(p *sim.Proc) {
		fn(p, task)
		done = true
	})
	deadline := r.c.Now().Add(10 * sim.Minute)
	for !done && r.c.Now() < deadline {
		r.c.RunFor(sim.Second)
	}
	if !done {
		t.Fatal("client did not finish")
	}
}

func TestWriteReadRoundTripAcrossServers(t *testing.T) {
	r := newRig(t, 4)
	payload := make([]byte, 100*1024) // 100 KB spans many stripes
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "dataset", true)
		if err != nil {
			t.Error(err)
			return
		}
		if n, err := f.WriteAt(p, task, 0, payload); err != nil || n != len(payload) {
			t.Errorf("WriteAt = %d, %v", n, err)
			return
		}
		out := make([]byte, len(payload))
		if n, err := f.ReadAt(p, task, 0, out); err != nil || n != len(out) {
			t.Errorf("ReadAt = %d, %v", n, err)
			return
		}
		if !bytes.Equal(out, payload) {
			t.Error("round trip mismatch")
		}
		f.Close(p, task)
	})
}

func TestDeclusteringSpreadsAcrossNodes(t *testing.T) {
	r := newRig(t, 4)
	r.c.StartTracing()
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "spread", true)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.WriteAt(p, task, 0, make([]byte, 256*1024)); err != nil {
			t.Error(err)
		}
	})
	// Wait for write-back so the traffic reaches the disks.
	r.c.RunFor(time30)
	r.c.StopTracing()
	nodesWithData := 0
	for _, tr := range r.c.Traces() {
		for _, rec := range tr {
			if rec.Op == trace.Write && rec.Origin == trace.OriginData {
				nodesWithData++
				break
			}
		}
	}
	if nodesWithData != 4 {
		t.Fatalf("parallel file data reached %d/4 node disks", nodesWithData)
	}
}

const time30 = 30 * sim.Second

func TestStripeMath(t *testing.T) {
	r := newRig(t, 3, WithStripeUnit(1024))
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "s", true)
		if err != nil {
			t.Error(err)
			return
		}
		// Global offsets 0,1024,2048 go to servers 0,1,2; 3072 wraps to
		// server 0 local offset 1024.
		cases := []struct {
			off   int64
			srv   int
			local int64
		}{
			{0, 0, 0}, {1024, 1, 0}, {2048, 2, 0}, {3072, 0, 1024}, {3500, 0, 1452},
		}
		for _, cse := range cases {
			srv, local := f.stripe(cse.off)
			if srv != cse.srv || local != cse.local {
				t.Errorf("stripe(%d) = (%d,%d), want (%d,%d)", cse.off, srv, local, cse.srv, cse.local)
			}
		}
	})
}

func TestPiecesCoverRangeExactly(t *testing.T) {
	r := newRig(t, 4, WithStripeUnit(2048))
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "pieces", true)
		if err != nil {
			t.Error(err)
			return
		}
		for _, span := range []struct {
			off int64
			n   int
		}{{0, 100}, {1000, 5000}, {2047, 2}, {8192, 16384}} {
			ps := f.pieces(span.off, span.n)
			total := 0
			next := span.off
			for _, pc := range ps {
				if pc.globOff != next {
					t.Errorf("pieces(%d,%d): gap at %d", span.off, span.n, pc.globOff)
				}
				total += pc.n
				next += int64(pc.n)
			}
			if total != span.n {
				t.Errorf("pieces(%d,%d) cover %d bytes", span.off, span.n, total)
			}
		}
	})
}

func TestOpenExistingFile(t *testing.T) {
	r := newRig(t, 2)
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "keep", true)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.WriteAt(p, task, 0, []byte("hello")); err != nil {
			t.Error(err)
			return
		}
		f.Close(p, task)
		g, err := r.sys.Open(p, task, "keep", false)
		if err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 5)
		if _, err := g.ReadAt(p, task, 0, out); err != nil {
			t.Error(err)
			return
		}
		if string(out) != "hello" {
			t.Errorf("read %q", out)
		}
	})
}

func TestOpenMissingFileFails(t *testing.T) {
	r := newRig(t, 2)
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		if _, err := r.sys.Open(p, task, "nope", false); err == nil {
			t.Error("want error opening missing parallel file")
		}
	})
}

func TestUnwrittenRegionsReadZero(t *testing.T) {
	r := newRig(t, 3)
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "sparse", true)
		if err != nil {
			t.Error(err)
			return
		}
		// Write only the second stripe unit.
		if _, err := f.WriteAt(p, task, int64(r.sys.StripeUnit()), bytes.Repeat([]byte{9}, 100)); err != nil {
			t.Error(err)
			return
		}
		out := bytes.Repeat([]byte{0xFF}, r.sys.StripeUnit())
		if _, err := f.ReadAt(p, task, 0, out); err != nil {
			t.Error(err)
			return
		}
		for i, b := range out {
			if b != 0 {
				t.Errorf("byte %d = %x, want 0", i, b)
				return
			}
		}
	})
}

func TestStopShutsDownServers(t *testing.T) {
	r := newRig(t, 2)
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "pre", true)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := f.WriteAt(p, task, 0, []byte("x")); err != nil {
			t.Error(err)
			return
		}
		r.sys.Stop(task)
	})
	// After Stop the server goroutines exit; the engine drains without
	// further PIOUS activity.
	r.c.RunFor(10 * sim.Second)
}

func TestWriteAtOffsetPreservesOtherStripes(t *testing.T) {
	r := newRig(t, 3, WithStripeUnit(1024))
	r.runClient(t, func(p *sim.Proc, task *pvm.Task) {
		f, err := r.sys.Open(p, task, "patch", true)
		if err != nil {
			t.Error(err)
			return
		}
		base := bytes.Repeat([]byte{0x11}, 6*1024)
		if _, err := f.WriteAt(p, task, 0, base); err != nil {
			t.Error(err)
			return
		}
		// Overwrite a window straddling two stripe units.
		patch := bytes.Repeat([]byte{0x22}, 1500)
		if _, err := f.WriteAt(p, task, 700, patch); err != nil {
			t.Error(err)
			return
		}
		out := make([]byte, 6*1024)
		if _, err := f.ReadAt(p, task, 0, out); err != nil {
			t.Error(err)
			return
		}
		for i := range out {
			want := byte(0x11)
			if i >= 700 && i < 2200 {
				want = 0x22
			}
			if out[i] != want {
				t.Errorf("byte %d = %x, want %x", i, out[i], want)
				return
			}
		}
	})
}
