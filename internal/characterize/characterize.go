// Package characterize is the shared single-pass characterization
// surface behind cmd/essanalyze and the essd ingest endpoint: one Set
// of streaming accumulators fed from a trace Source, an exact Merge for
// chunked parallel passes, and a Report renderer producing the CLI's
// output byte for byte. Factoring it out of essanalyze is what lets the
// daemon's streamed characterization be diffed 1:1 against the batch
// CLI — the acceptance check of the service.
package characterize

import (
	"fmt"
	"sort"
	"strings"

	"essio/internal/analysis"
	"essio/internal/trace"
)

// Options selects which metrics a Set computes, mirroring essanalyze's
// flags one to one.
type Options struct {
	// Label is the row label of the summary line.
	Label string
	// Nodes is the number of disks the trace covers.
	Nodes int
	// Hist adds the request-size histogram.
	Hist bool
	// Spatial adds the 100K-sector locality bands.
	Spatial bool
	// Temporal adds the hottest-sector and inter-access report.
	Temporal bool
	// Queue adds driver queue-depth statistics.
	Queue bool
	// Origins adds the ground-truth origin breakdown.
	Origins bool
	// DiskSectors is the disk size in sectors (for the spatial bands).
	DiskSectors uint32
}

// DefaultOptions returns the CLI's defaults: a 16-node summary over the
// standard 1024000-sector disk, no optional sections.
func DefaultOptions() Options {
	return Options{Label: "trace", Nodes: 16, DiskSectors: 1024000}
}

// Set is one pass's set of requested accumulators. Feed it through
// Sink (or the individual Sinks) and render with Report.
type Set struct {
	opts  Options //essvet:mergeignore identical across shards by construction
	sum   *analysis.SummaryAcc
	hist  *analysis.SizeHistAcc
	bands *analysis.BandsAcc
	heat  *analysis.HeatAcc
	inter *analysis.InterAccessAcc
	pend  *analysis.PendingAcc
	orig  *analysis.OriginAcc
}

// New builds the accumulator set o selects.
func New(o Options) *Set {
	s := &Set{opts: o, sum: analysis.NewSummaryAcc(o.Label, 0, o.Nodes)}
	if o.Hist {
		s.hist = analysis.NewSizeHistAcc()
	}
	if o.Spatial {
		s.bands = analysis.NewBandsAcc(100000, o.DiskSectors)
	}
	if o.Temporal {
		s.heat = analysis.NewHeatAcc()
		s.inter = analysis.NewInterAccessAcc()
	}
	if o.Queue {
		s.pend = analysis.NewPendingAcc()
	}
	if o.Origins {
		s.orig = analysis.NewOriginAcc()
	}
	return s
}

// Sinks lists the selected accumulators as trace sinks, for callers
// that compose their own Tee.
func (s *Set) Sinks() []trace.Sink {
	out := []trace.Sink{s.sum}
	if s.hist != nil {
		out = append(out, s.hist)
	}
	if s.bands != nil {
		out = append(out, s.bands)
	}
	if s.heat != nil {
		out = append(out, s.heat, s.inter)
	}
	if s.pend != nil {
		out = append(out, s.pend)
	}
	if s.orig != nil {
		out = append(out, s.orig)
	}
	return out
}

// Sink returns one sink fanning records out to every selected
// accumulator (a batch-aware Tee).
func (s *Set) Sink() trace.Sink { return trace.Tee(s.Sinks()...) }

// Merge folds b, which consumed the records immediately following s's,
// into s. Every fold is the accumulator's exact Merge, so the combined
// set matches a sequential pass over the whole stream.
func (s *Set) Merge(b *Set) {
	s.sum.Merge(b.sum)
	if s.hist != nil {
		s.hist.Merge(b.hist)
	}
	if s.bands != nil {
		s.bands.Merge(b.bands)
	}
	if s.heat != nil {
		s.heat.Merge(b.heat)
		s.inter.Merge(b.inter)
	}
	if s.pend != nil {
		s.pend.Merge(b.pend)
	}
	if s.orig != nil {
		s.orig.Merge(b.orig)
	}
}

// Report renders the characterization exactly as cmd/essanalyze prints
// it, section by section in flag order; n is the record count of the
// pass ("empty trace" when zero). The bytes are the CLI's stdout
// verbatim — the equality the essd ingest acceptance test diffs.
func (s *Set) Report(n int) string {
	var b strings.Builder
	if n == 0 {
		fmt.Fprintln(&b, "empty trace")
		return b.String()
	}
	duration := s.sum.Span()
	s.sum.SetDuration(duration)
	fmt.Fprintln(&b, s.sum.Summary())

	if s.hist != nil {
		h := s.hist.Histogram()
		sizes := make([]int, 0, len(h))
		for kb := range h {
			sizes = append(sizes, kb)
		}
		sort.Ints(sizes)
		fmt.Fprintln(&b, "request sizes:")
		for _, kb := range sizes {
			fmt.Fprintf(&b, "  %3d KB: %6d\n", kb, h[kb])
		}
	}
	if s.bands != nil {
		bands := s.bands.Bands()
		fmt.Fprintln(&b, "spatial locality (100K-sector bands):")
		for _, band := range bands {
			if band.Count > 0 {
				fmt.Fprintf(&b, "  %7d-%7d: %6d (%5.1f%%)\n", band.Lo, band.Hi, band.Count, band.Pct)
			}
		}
		fmt.Fprintf(&b, "  80%% of requests in %.0f%% of bands\n", 100*analysis.Pareto(bands, 0.8))
	}
	if s.heat != nil {
		heat := s.heat.Heat(duration)
		fmt.Fprintln(&b, "hottest sectors:")
		for _, h := range analysis.Hottest(heat, 10) {
			fmt.Fprintf(&b, "  sector %7d: %6d accesses (%.3f/s)\n", h.Sector, h.Count, h.PerSec)
		}
		mean, sectors := s.inter.Result()
		fmt.Fprintf(&b, "  mean inter-access time %.2fs over %d revisited sectors\n", mean.Seconds(), sectors)
	}
	if s.pend != nil {
		q := s.pend.Stats()
		fmt.Fprintf(&b, "driver queue: mean depth %.2f, max %d, busy on %.0f%% of issues\n",
			q.MeanPending, q.MaxPending, 100*q.BusyFrac)
	}
	if s.orig != nil {
		fmt.Fprintln(&b, "origins:")
		counts := s.orig.Breakdown()
		keys := make([]int, 0, len(counts))
		for o := range counts {
			keys = append(keys, int(o))
		}
		sort.Ints(keys)
		for _, o := range keys {
			fmt.Fprintf(&b, "  %-8s %6d\n", trace.Origin(o), counts[trace.Origin(o)])
		}
	}
	return b.String()
}

// Characterize drains src through a fresh Set and renders the report:
// the one-call sequential path shared by the CLI fallback and the
// daemon's ingest endpoint.
func Characterize(src trace.Source, o Options) (string, int, error) {
	s := New(o)
	n, err := trace.Copy(s.Sink(), src)
	if err != nil {
		return "", n, err
	}
	return s.Report(n), n, nil
}
