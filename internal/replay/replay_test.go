package replay

import (
	"testing"

	"essio/internal/disk"
	"essio/internal/sim"
	"essio/internal/trace"
)

// burstTrace: per node, a burst of contiguous 1 KB writes every second —
// mergeable under queueing.
func burstTrace(nodes, bursts, perBurst int) []trace.Record {
	var recs []trace.Record
	for n := 0; n < nodes; n++ {
		for b := 0; b < bursts; b++ {
			base := uint32(100000*n + 5000*b)
			for i := 0; i < perBurst; i++ {
				recs = append(recs, trace.Record{
					Time:   sim.Time(b) * sim.Time(sim.Second),
					Sector: base + uint32(2*i),
					Count:  2,
					Op:     trace.Write,
					Node:   uint8(n),
					Origin: trace.OriginData,
				})
			}
		}
	}
	return trace.Merge(recs)
}

func TestReplayEmpty(t *testing.T) {
	rep, err := Replay(nil, Config{})
	if err != nil || rep.Requests != 0 {
		t.Fatalf("rep = %+v, %v", rep, err)
	}
}

func TestReplayCompletesAll(t *testing.T) {
	recs := burstTrace(2, 5, 8)
	rep, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != len(recs) || rep.Nodes != 2 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.Elapsed <= 0 || rep.MeanWaitMs <= 0 || rep.PhysReqs == 0 {
		t.Fatalf("rep = %+v", rep)
	}
	// Open-loop elapsed covers the recorded span (4 s of arrivals).
	if rep.Elapsed < 4*sim.Second {
		t.Fatalf("elapsed %v shorter than the arrival span", rep.Elapsed)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestReplayMergingReducesPhysicalRequests(t *testing.T) {
	recs := burstTrace(1, 4, 16)
	merged, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := Replay(recs, Config{MaxRequestSectors: -1})
	if err != nil {
		t.Fatal(err)
	}
	if merged.PhysReqs >= unmerged.PhysReqs {
		t.Fatalf("merged %d phys reqs, unmerged %d; merging must reduce", merged.PhysReqs, unmerged.PhysReqs)
	}
	if unmerged.PhysReqs != uint64(len(recs)) {
		t.Fatalf("unmerged phys reqs = %d, want %d", unmerged.PhysReqs, len(recs))
	}
}

func TestReplayFasterDiskLowersWait(t *testing.T) {
	recs := burstTrace(1, 4, 16)
	slow, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fast := disk.DefaultParams()
	fast.TransferRate *= 4
	fast.TrackSeek /= 4
	fast.FullSeek /= 4
	fast.RPM *= 2
	fastRep, err := Replay(recs, Config{Disk: fast})
	if err != nil {
		t.Fatal(err)
	}
	if fastRep.MeanWaitMs >= slow.MeanWaitMs {
		t.Fatalf("fast disk wait %.2fms not below slow %.2fms", fastRep.MeanWaitMs, slow.MeanWaitMs)
	}
}

func TestReplayClosedLoopIsDeviceBound(t *testing.T) {
	recs := burstTrace(1, 3, 8)
	open, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Replay(recs, Config{ClosedLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	// Closed loop ignores the 1-second arrival gaps: it must finish faster
	// than the recorded span.
	if closed.Elapsed >= open.Elapsed {
		t.Fatalf("closed loop %v not faster than open loop %v", closed.Elapsed, open.Elapsed)
	}
	if closed.Requests != len(recs) {
		t.Fatalf("closed loop completed %d", closed.Requests)
	}
}

func TestReplayDeterministic(t *testing.T) {
	recs := burstTrace(2, 3, 8)
	a, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestReplayBasicLevelRecords(t *testing.T) {
	// Records without a size (basic instrumentation) replay as 1 KB.
	recs := []trace.Record{
		{Time: 0, Sector: 100, Count: 0, Op: trace.Read},
		{Time: 1000, Sector: 200, Count: 0, Op: trace.Write},
	}
	rep, err := Replay(recs, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2 {
		t.Fatalf("rep = %+v", rep)
	}
}

func TestReplayClampsOutOfRangeSectors(t *testing.T) {
	small := disk.DefaultParams()
	small.Sectors = 10000
	recs := []trace.Record{{Time: 0, Sector: 999999, Count: 8, Op: trace.Write}}
	rep, err := Replay(recs, Config{Disk: small})
	if err != nil || rep.Requests != 1 {
		t.Fatalf("rep = %+v, %v", rep, err)
	}
}
