// Package replay re-executes a captured driver trace against an
// alternative disk and request-queue configuration, reporting the service
// behaviour the same workload would have seen — the "system design and
// tuning" application the paper proposes building on top of its
// characterization.
//
// Replay happens below the cache: the input is the physical request stream
// the instrumented driver recorded, so cache-level knobs (read-ahead, write
// policy) are evaluated by re-running experiments, while disk and elevator
// alternatives are evaluated here, cheaply, from the trace alone.
package replay

import (
	"fmt"

	"essio/internal/blockio"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/sim"
	"essio/internal/trace"
)

// Config selects the hardware/queue configuration to replay against.
type Config struct {
	// Disk is the drive model; zero value uses the Beowulf default.
	Disk disk.Params
	// MaxRequestSectors caps elevator merging (0 = default 64; <0
	// disables merging).
	MaxRequestSectors int
	// PlugDelay sets queue plugging (0 = default; <0 disables).
	PlugDelay sim.Duration
	// ClosedLoop submits each node's requests back-to-back instead of at
	// their recorded timestamps, measuring pure throughput rather than
	// the recorded arrival process.
	ClosedLoop bool
}

// Report summarizes one replay.
type Report struct {
	Requests   int
	Nodes      int
	Elapsed    sim.Duration // virtual time until the last completion
	DiskBusy   sim.Duration // summed busy time across disks
	PhysReqs   uint64       // physical requests after (re-)merging
	MeanWaitMs float64      // mean submission-to-completion latency
	// Utilization is DiskBusy / (Elapsed * Nodes).
	Utilization float64
}

func (r Report) String() string {
	return fmt.Sprintf("replayed %d requests on %d disk(s): %.1fs elapsed, %d physical I/Os, mean wait %.1f ms, utilization %.0f%%",
		r.Requests, r.Nodes, r.Elapsed.Seconds(), r.PhysReqs, r.MeanWaitMs, 100*r.Utilization)
}

// Replay runs the trace against the configuration. Each node's records
// replay on that node's own disk, preserving per-disk streams.
func Replay(recs []trace.Record, cfg Config) (Report, error) {
	var rep Report
	if len(recs) == 0 {
		return rep, nil
	}
	if cfg.Disk.Sectors == 0 {
		cfg.Disk = disk.DefaultParams()
	}

	perNode := make(map[uint8][]trace.Record)
	for _, r := range recs {
		perNode[r.Node] = append(perNode[r.Node], r)
	}
	rep.Requests = len(recs)
	rep.Nodes = len(perNode)

	e := sim.NewEngine(1)
	defer e.Close()

	var qopts []blockio.Option
	if cfg.MaxRequestSectors < 0 {
		qopts = append(qopts, blockio.WithMaxSectors(0))
	} else if cfg.MaxRequestSectors > 0 {
		qopts = append(qopts, blockio.WithMaxSectors(cfg.MaxRequestSectors))
	}
	if cfg.PlugDelay < 0 {
		qopts = append(qopts, blockio.WithPlugDelay(0))
	} else if cfg.PlugDelay > 0 {
		qopts = append(qopts, blockio.WithPlugDelay(cfg.PlugDelay))
	}

	type nodeRig struct {
		d *disk.Disk
		q *blockio.Queue
	}
	rigs := make(map[uint8]*nodeRig, len(perNode))
	for node := range perNode {
		d := disk.New(e, cfg.Disk)
		q := blockio.New(e, qopts...)
		driver.New(e, d, q, node, nil)
		rigs[node] = &nodeRig{d: d, q: q}
	}

	t0 := recs[0].Time
	var totalWait sim.Duration
	completions := 0
	var lastDone sim.Time
	var submitErr error

	for node, stream := range perNode {
		rig := rigs[node]
		stream := stream
		e.Spawn(fmt.Sprintf("replay%d", node), func(p *sim.Proc) {
			for _, r := range stream {
				if !cfg.ClosedLoop {
					at := sim.Time(r.Time - t0)
					if at > p.Now() {
						p.Sleep(at.Sub(p.Now()))
					}
				}
				count := int(r.Count)
				if count == 0 {
					count = 2 // basic-level records carry no size; assume 1 KB
				}
				sector := r.Sector
				if sector+uint32(count) > cfg.Disk.Sectors {
					sector = cfg.Disk.Sectors - uint32(count)
				}
				buf := make([]byte, count*trace.SectorSize)
				start := p.Now()
				done, err := rig.q.Submit(sector, buf, r.Op == trace.Write, r.Origin)
				if err != nil {
					submitErr = err
					return
				}
				if cfg.ClosedLoop {
					// Throughput mode: wait for each request so the
					// stream is limited by the device, not the trace.
					if err := done.Wait(p); err != nil {
						submitErr = err
						return
					}
					totalWait += p.Now().Sub(start)
					completions++
					if p.Now() > lastDone {
						lastDone = p.Now()
					}
				} else {
					done.OnComplete(func(error) {
						totalWait += e.Now().Sub(start)
						completions++
						if e.Now() > lastDone {
							lastDone = e.Now()
						}
					})
				}
			}
		})
	}
	e.RunUntilIdle()
	if submitErr != nil {
		return rep, submitErr
	}
	if completions != rep.Requests {
		return rep, fmt.Errorf("replay: %d of %d requests completed", completions, rep.Requests)
	}

	rep.Elapsed = sim.Duration(lastDone)
	for _, rig := range rigs {
		st := rig.d.Stats()
		rep.DiskBusy += st.BusyTime
		rep.PhysReqs += st.Reads + st.Writes
	}
	if rep.Requests > 0 {
		rep.MeanWaitMs = totalWait.Milliseconds() / float64(rep.Requests)
	}
	if rep.Elapsed > 0 && rep.Nodes > 0 {
		rep.Utilization = rep.DiskBusy.Seconds() / (rep.Elapsed.Seconds() * float64(rep.Nodes))
	}
	return rep, nil
}
