package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"essio/internal/obs"
)

// TestLevelGating proves the ioctl-style switch: counters and gauges
// need Counters, histograms and spans need Full, and Off records
// nothing.
func TestLevelGating(t *testing.T) {
	for _, tc := range []struct {
		level              obs.Level
		wantCtr, wantHist  uint64
		wantGauge, wantMax int64
	}{
		{obs.Off, 0, 0, 0, 0},
		{obs.Counters, 3, 0, 7, 7},
		{obs.Full, 3, 2, 7, 7},
	} {
		r := obs.New(tc.level)
		c := r.Counter("c")
		g := r.Gauge("g")
		h := r.Histogram("h", obs.LinearBuckets(10, 10, 4))
		c.Add(3)
		g.Set(7)
		h.Observe(15)
		h.Observe(100)
		if c.Value() != tc.wantCtr {
			t.Errorf("level %v: counter = %d, want %d", tc.level, c.Value(), tc.wantCtr)
		}
		if g.Value() != tc.wantGauge || g.Max() != tc.wantMax {
			t.Errorf("level %v: gauge = %d/%d, want %d/%d",
				tc.level, g.Value(), g.Max(), tc.wantGauge, tc.wantMax)
		}
		if h.Count() != tc.wantHist {
			t.Errorf("level %v: histogram count = %d, want %d", tc.level, h.Count(), tc.wantHist)
		}
	}
}

// TestSetLevelLiveHandles proves handles minted before a level change
// observe it, the way the paper's driver obeyed ioctl mid-run.
func TestSetLevelLiveHandles(t *testing.T) {
	r := obs.New(obs.Off)
	c := r.Counter("c")
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("counter recorded while Off")
	}
	r.SetLevel(obs.Counters)
	c.Inc()
	c.Inc()
	r.SetLevel(obs.Off)
	c.Inc()
	if c.Value() != 2 {
		t.Fatalf("counter = %d after off/on/off, want 2", c.Value())
	}
}

// TestNilSafety exercises every handle path against a nil registry: the
// uninstrumented configuration must be completely inert.
func TestNilSafety(t *testing.T) {
	var r *obs.Registry
	r.SetLevel(obs.Full)
	if r.Level() != obs.Off {
		t.Errorf("nil registry level = %v, want Off", r.Level())
	}
	c := r.Counter("c")
	c.Add(1)
	c.Inc()
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("h", nil)
	h.Observe(1)
	st := r.Stage("s")
	st.Observe(1, 1)
	st.ObserveBatch(1, 1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || h.Count() != 0 || st.Records() != 0 {
		t.Errorf("nil handles recorded state")
	}
	r.Merge(obs.New(obs.Full))
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Errorf("nil registry snapshot not empty")
	}
	tr := obs.NewTracer(r, func() int64 { return 0 })
	sp := tr.Stage("x").Start()
	sp.End()
}

// fill applies a deterministic little workload, scaled by k so shards
// are distinguishable.
func fill(r *obs.Registry, k int) {
	r.Counter("a/reads").Add(uint64(3 * k))
	r.Counter("b/writes").Add(uint64(5 * k))
	g := r.Gauge("q/depth")
	g.Set(int64(2 * k))
	g.Set(int64(k))
	h := r.Histogram("lat", obs.ExpBuckets(1, 2, 6))
	for i := 0; i < 4*k; i++ {
		h.Observe(int64(i))
	}
}

// TestRegistryMergeExact proves Registry.Merge equals replaying both
// update streams into one registry — the invariant the parallel profile
// driver depends on. Counters and histograms are pure sums, so the
// merged rendering must match the combined history byte for byte;
// gauges aggregate as sum-of-values and max-of-maxes, asserted
// explicitly (a gauge's interleaved history is not reconstructible from
// shards, which is why the sharded pipeline keeps gauges per-domain).
func TestRegistryMergeExact(t *testing.T) {
	a, b := obs.New(obs.Full), obs.New(obs.Full)
	fill(a, 1)
	fill(b, 3)
	b.Counter("only/b").Add(9)

	whole := obs.New(obs.Full)
	fill(whole, 1)
	fill(whole, 3)
	whole.Counter("only/b").Add(9)

	a.Merge(b)
	got, want := a.Snapshot(), whole.Snapshot()
	if g := got.Gauge("q/depth"); g.Value != 1+3 || g.Max != 6 {
		t.Errorf("merged gauge = %+v, want value 4 (sum) max 6 (max of shard maxes)", g)
	}
	got.Gauges, want.Gauges = nil, nil
	if got.Text() != want.Text() {
		t.Errorf("merged registry differs from combined history:\n--- merged\n%s--- combined\n%s",
			got.Text(), want.Text())
	}
}

// TestSnapshotMergeAssociative proves per-worker snapshots merged in any
// grouping produce identical bytes, so worker count cannot leak into
// output.
func TestSnapshotMergeAssociative(t *testing.T) {
	snaps := make([]*obs.Snapshot, 4)
	for i := range snaps {
		r := obs.New(obs.Full)
		fill(r, i+1)
		if i%2 == 0 {
			r.Counter("even/only").Add(uint64(i + 1))
		}
		snaps[i] = r.Snapshot()
	}
	// Left fold.
	left := &obs.Snapshot{}
	for _, s := range snaps {
		left.Merge(s)
	}
	// Pairwise tree.
	ab := &obs.Snapshot{}
	ab.Merge(snaps[0])
	ab.Merge(snaps[1])
	cd := &obs.Snapshot{}
	cd.Merge(snaps[2])
	cd.Merge(snaps[3])
	tree := &obs.Snapshot{}
	tree.Merge(cd)
	tree.Merge(ab)
	if left.Text() != tree.Text() {
		t.Errorf("merge grouping changed snapshot bytes:\n--- fold\n%s--- tree\n%s", left.Text(), tree.Text())
	}
}

// TestSnapshotSortedAndStable proves snapshots emit in sorted name
// order regardless of registration order, and render identically twice.
func TestSnapshotSortedAndStable(t *testing.T) {
	r := obs.New(obs.Full)
	for _, name := range []string{"z/last", "m/mid", "a/first"} {
		r.Counter(name).Inc()
		r.Gauge("g/" + name).Set(1)
		r.Histogram("h/"+name, obs.LinearBuckets(1, 1, 2)).Observe(1)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Errorf("counters out of order: %q before %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
	for i := 1; i < len(s.Gauges); i++ {
		if s.Gauges[i-1].Name >= s.Gauges[i].Name {
			t.Errorf("gauges out of order: %q before %q", s.Gauges[i-1].Name, s.Gauges[i].Name)
		}
	}
	for i := 1; i < len(s.Hists); i++ {
		if s.Hists[i-1].Name >= s.Hists[i].Name {
			t.Errorf("histograms out of order: %q before %q", s.Hists[i-1].Name, s.Hists[i].Name)
		}
	}
	if s.Text() != r.Snapshot().Text() {
		t.Errorf("two snapshots of unchanged registry render differently")
	}
}

// TestSnapshotLookups exercises the by-name accessors.
func TestSnapshotLookups(t *testing.T) {
	r := obs.New(obs.Full)
	fill(r, 2)
	s := r.Snapshot()
	if got := s.Counter("a/reads"); got != 6 {
		t.Errorf("Counter(a/reads) = %d, want 6", got)
	}
	if got := s.Counter("absent"); got != 0 {
		t.Errorf("Counter(absent) = %d, want 0", got)
	}
	if g := s.Gauge("q/depth"); g.Value != 2 || g.Max != 4 {
		t.Errorf("Gauge(q/depth) = %+v, want value 2 max 4", g)
	}
	if h := s.Hist("lat"); h == nil || h.Count != 8 {
		t.Errorf("Hist(lat) = %+v, want count 8", h)
	}
	if s.Hist("absent") != nil {
		t.Errorf("Hist(absent) non-nil")
	}
}

// TestJSONRoundTrip proves JSON rendering survives a parse and
// re-render byte-identically.
func TestJSONRoundTrip(t *testing.T) {
	r := obs.New(obs.Full)
	fill(r, 5)
	s := r.Snapshot()
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseJSON(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("JSON round trip not stable:\n%s\nvs\n%s", data, data2)
	}
	if s.Text() != back.Text() {
		t.Errorf("text rendering changed across JSON round trip")
	}
}

// TestTextExposition spot-checks the Prometheus rendering: mangled
// names, cumulative buckets, +Inf terminator.
func TestTextExposition(t *testing.T) {
	r := obs.New(obs.Full)
	r.Counter("pipeline/source/records").Add(42)
	h := r.Histogram("disk/seek", obs.LinearBuckets(10, 10, 2))
	h.Observe(5)
	h.Observe(15)
	h.Observe(99)
	text := r.Snapshot().Text()
	for _, want := range []string{
		"# TYPE essio_pipeline_source_records counter",
		"essio_pipeline_source_records 42",
		"essio_disk_seek_bucket{le=\"10\"} 1",
		"essio_disk_seek_bucket{le=\"20\"} 2",
		"essio_disk_seek_bucket{le=\"+Inf\"} 3",
		"essio_disk_seek_count 3",
		"essio_disk_seek_sum 119",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text exposition missing %q:\n%s", want, text)
		}
	}
}

// TestHistogramMergeMismatchPanics proves geometry mismatches fail loud.
func TestHistogramMergeMismatchPanics(t *testing.T) {
	a, b := obs.New(obs.Full), obs.New(obs.Full)
	a.Histogram("h", obs.LinearBuckets(1, 1, 3))
	b.Histogram("h", obs.LinearBuckets(2, 2, 3))
	defer func() {
		if recover() == nil {
			t.Errorf("mismatched histogram merge did not panic")
		}
	}()
	a.Merge(b)
}

// TestTracer proves spans measure on the supplied clock and respect the
// level gate.
func TestTracer(t *testing.T) {
	var now int64
	r := obs.New(obs.Full)
	tr := obs.NewTracer(r, func() int64 { return now })
	st := tr.Stage("merge")
	sp := st.Start()
	now += 17
	sp.End()
	sp = st.Start()
	now += 3
	sp.End()
	s := r.Snapshot()
	if got := s.Counter("span/merge/spans"); got != 2 {
		t.Errorf("spans = %d, want 2", got)
	}
	if got := s.Counter("span/merge/ticks"); got != 20 {
		t.Errorf("ticks = %d, want 20", got)
	}
	if h := s.Hist("span/merge/dur"); h == nil || h.Count != 2 {
		t.Errorf("duration histogram = %+v, want count 2", h)
	}

	// Below Full, Start returns an inert span.
	r.SetLevel(obs.Counters)
	sp = st.Start()
	now += 100
	sp.End()
	if got := r.Snapshot().Counter("span/merge/spans"); got != 2 {
		t.Errorf("span recorded below Full: %d", got)
	}
}

// TestStage proves the per-stage triple counts records, batches, and
// bytes.
func TestStage(t *testing.T) {
	r := obs.New(obs.Counters)
	st := r.Stage("source")
	st.ObserveBatch(100, 2000)
	st.ObserveBatch(50, 1000)
	st.Observe(1, 20)
	s := r.Snapshot()
	if got := s.Counter("pipeline/source/records"); got != 151 {
		t.Errorf("records = %d, want 151", got)
	}
	if got := s.Counter("pipeline/source/batches"); got != 2 {
		t.Errorf("batches = %d, want 2", got)
	}
	if got := s.Counter("pipeline/source/bytes"); got != 3020 {
		t.Errorf("bytes = %d, want 3020", got)
	}
	if st.Records() != 151 {
		t.Errorf("Stage.Records = %d, want 151", st.Records())
	}
}

// TestBucketHelpers pins the two bound generators.
func TestBucketHelpers(t *testing.T) {
	exp := obs.ExpBuckets(1, 2, 5)
	for i, want := range []int64{1, 2, 4, 8, 16} {
		if exp[i] != want {
			t.Errorf("ExpBuckets[%d] = %d, want %d", i, exp[i], want)
		}
	}
	lin := obs.LinearBuckets(10, 5, 3)
	for i, want := range []int64{10, 15, 20} {
		if lin[i] != want {
			t.Errorf("LinearBuckets[%d] = %d, want %d", i, lin[i], want)
		}
	}
}

// TestParseLevel pins the flag vocabulary.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]obs.Level{
		"off": obs.Off, "counters": obs.Counters, "full": obs.Full,
		"trace": obs.Trace, "bogus": obs.Unset,
	} {
		if got := obs.ParseLevel(s); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", s, got, want)
		}
	}
	for _, l := range []obs.Level{obs.Off, obs.Counters, obs.Full, obs.Trace} {
		if obs.ParseLevel(l.String()) != l {
			t.Errorf("ParseLevel(%v.String()) != %v", l, l)
		}
	}
}
