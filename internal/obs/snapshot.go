package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CounterSample is one counter's state in a snapshot.
type CounterSample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSample is one gauge's state in a snapshot: current value and
// high-water mark.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Max   int64  `json:"max"`
}

// HistSample is one histogram's state in a snapshot. Buckets has one
// more entry than Bounds: the overflow bucket.
type HistSample struct {
	Name    string   `json:"name"`
	Bounds  []int64  `json:"bounds"`
	Buckets []uint64 `json:"buckets"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
}

// Snapshot is a registry's metric state at one moment, every section
// sorted by metric name. Equal collection histories yield byte-identical
// Text and JSON renderings, which is what the determinism tests diff.
type Snapshot struct {
	Counters []CounterSample `json:"counters"`
	Gauges   []GaugeSample   `json:"gauges"`
	Hists    []HistSample    `json:"histograms"`
}

// Merge folds another snapshot into s exactly: counters and histogram
// buckets add, gauge values add and high-waters take the maximum, names
// unknown to s are adopted in order. Both snapshots being sorted, the
// result is sorted too, so merging per-worker snapshots in any grouping
// yields identical bytes. Histograms sharing a name but not bucket
// geometry panic, as in Registry.Merge.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	s.Counters = mergeCounters(s.Counters, o.Counters)
	s.Gauges = mergeGauges(s.Gauges, o.Gauges)
	s.Hists = mergeHists(s.Hists, o.Hists)
}

// mergeCounters merge-joins two sorted counter lists, summing shared
// names.
func mergeCounters(a, b []CounterSample) []CounterSample {
	out := make([]CounterSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case a[i].Name > b[j].Name:
			out = append(out, b[j])
			j++
		default:
			out = append(out, CounterSample{Name: a[i].Name, Value: a[i].Value + b[j].Value})
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeGauges merge-joins two sorted gauge lists: values sum, maxes max.
func mergeGauges(a, b []GaugeSample) []GaugeSample {
	out := make([]GaugeSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case a[i].Name > b[j].Name:
			out = append(out, b[j])
			j++
		default:
			g := GaugeSample{Name: a[i].Name, Value: a[i].Value + b[j].Value, Max: a[i].Max}
			if b[j].Max > g.Max {
				g.Max = b[j].Max
			}
			out = append(out, g)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeHists merge-joins two sorted histogram lists, adding buckets of
// shared names and panicking on geometry mismatch.
func mergeHists(a, b []HistSample) []HistSample {
	out := make([]HistSample, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Name < b[j].Name:
			out = append(out, a[i])
			i++
		case a[i].Name > b[j].Name:
			out = append(out, b[j])
			j++
		default:
			x, y := a[i], b[j]
			if len(x.Bounds) != len(y.Bounds) {
				panic("obs: histogram " + x.Name + " merged with mismatched bucket count")
			}
			m := HistSample{
				Name:    x.Name,
				Bounds:  append([]int64(nil), x.Bounds...),
				Buckets: append([]uint64(nil), x.Buckets...),
				Count:   x.Count + y.Count,
				Sum:     x.Sum + y.Sum,
			}
			for k, bnd := range y.Bounds {
				if m.Bounds[k] != bnd {
					panic("obs: histogram " + x.Name + " merged with mismatched bounds")
				}
			}
			for k, n := range y.Buckets {
				m.Buckets[k] += n
			}
			out = append(out, m)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Counter looks up a counter's value by name (0 when absent) — the
// assertion helper CI smoke checks and tests lean on.
func (s *Snapshot) Counter(name string) uint64 {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value
	}
	return 0
}

// Gauge looks up a gauge sample by name (zero sample when absent).
func (s *Snapshot) Gauge(name string) GaugeSample {
	i := sort.Search(len(s.Gauges), func(i int) bool { return s.Gauges[i].Name >= name })
	if i < len(s.Gauges) && s.Gauges[i].Name == name {
		return s.Gauges[i]
	}
	return GaugeSample{Name: name}
}

// Hist looks up a histogram sample by name (nil when absent).
func (s *Snapshot) Hist(name string) *HistSample {
	i := sort.Search(len(s.Hists), func(i int) bool { return s.Hists[i].Name >= name })
	if i < len(s.Hists) && s.Hists[i].Name == name {
		return &s.Hists[i]
	}
	return nil
}

// mangle converts a metric path to a Prometheus-legal series name:
// essio_pipeline_source_records from pipeline/source/records.
func mangle(name string) string {
	return "essio_" + strings.NewReplacer("/", "_", "-", "_", ".", "_").Replace(name)
}

// Text renders the snapshot in Prometheus text exposition format. Being
// built from sorted sections, equal snapshots render byte-identically.
func (s *Snapshot) Text() string {
	var b strings.Builder
	for _, c := range s.Counters {
		n := mangle(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := mangle(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n%s_max %d\n", n, n, g.Value, n, g.Max)
	}
	for _, h := range s.Hists {
		n := mangle(h.Name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, bnd := range h.Bounds {
			cum += h.Buckets[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", n, bnd, cum)
		}
		cum += h.Buckets[len(h.Bounds)]
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(&b, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
	return b.String()
}

// JSON renders the snapshot as indented JSON, the form essmon consumes.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ParseJSON reads a snapshot previously rendered by JSON. Sections are
// re-sorted defensively so lookups and merges stay correct even if the
// input was hand-edited.
func ParseJSON(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return &s, nil
}
