package obs_test

import (
	"testing"

	"essio/internal/core"
	"essio/internal/obs"
)

// snapShard builds one worker's snapshot of a deterministic workload;
// shard 1 shares some names with shard 0 and contributes unique ones,
// exercising both the sum-shared and adopt-new paths of the merge-join.
func snapShard(shard int) *obs.Snapshot {
	r := obs.New(obs.Full)
	k := shard + 1
	r.Counter("shared/records").Add(uint64(10 * k))
	r.Counter("shard/" + string(rune('a'+shard)) + "/only").Add(uint64(k))
	g := r.Gauge("shared/depth")
	g.Set(int64(4 * k))
	g.Set(int64(k))
	h := r.Histogram("shared/lat", obs.ExpBuckets(1, 2, 5))
	for i := 0; i < 6; i++ {
		h.Observe(int64(i * k))
	}
	return r.Snapshot()
}

// TestSnapshotMergePropagatesEveryField runs the runtime merge checker
// over obs.Snapshot, the mergefields-style complement for the type the
// static analyzer already covers: every field's state must survive
// Merge. No ignores — a snapshot is pure merged state, it carries no
// construction-time configuration.
func TestSnapshotMergePropagatesEveryField(t *testing.T) {
	drops, err := core.MergeDrops(
		func() any { return &obs.Snapshot{} },
		func(acc any, shard int) { acc.(*obs.Snapshot).Merge(snapShard(shard)) },
	)
	if err != nil {
		t.Fatalf("merge check could not run: %v", err)
	}
	for _, f := range drops {
		t.Errorf("Snapshot.Merge drops field %s: per-worker metrics would silently vanish", f)
	}
}
