// Package obs is the reproduction's observability layer: a deterministic
// metric registry (counters, gauges, fixed-bucket histograms) plus a
// span-based stage tracer, exposed the way the paper exposed its own
// instrumentation — through the (simulated) proc filesystem, with the
// collection level switchable at run time in the spirit of the study's
// ioctl knob.
//
// Determinism is the design constraint everything else bends around:
//
//   - No wall clocks. Every duration a metric or span records comes from
//     the simulation clock (sim.Time, threaded in as a plain int64) or
//     from record/batch counts, so two same-seed runs produce identical
//     metrics and the essvet determinism analyzer stays clean.
//   - Sorted emission. Snapshots list every metric in sorted name order,
//     so rendering a snapshot twice yields identical bytes.
//   - Exact merges. Snapshot.Merge and Registry.Merge fold per-worker
//     metric state the same way the analysis accumulators fold shards:
//     the merged result is byte-identical to a single-registry pass,
//     regardless of worker count.
//
// A Registry is deliberately not safe for concurrent use: the simulator
// is single-threaded, and the parallel drivers give each worker its own
// registry and Merge them afterwards, exactly as they do with analysis
// accumulators.
package obs

import "sort"

// Level selects how much the layer records, mirroring the run-time
// instrumentation switch of the paper's instrumented driver (ioctl
// trace-off / trace-basic / trace-full).
type Level int32

const (
	// Unset is the zero value; configuration structs treat it as
	// "use the default". New normalizes it to Off.
	Unset Level = iota
	// Off disables all collection. Handle methods reduce to one level
	// comparison, so instrumented hot paths stay near free.
	Off
	// Counters enables counters and gauges: cheap aggregate state with
	// one add or compare per update.
	Counters
	// Full additionally enables histograms and span collection, the
	// distribution-grade view.
	Full
	// Trace additionally enables the per-request I/O event journal
	// (internal/iotrace): every request's journey through the kernel
	// stack is recorded end to end. The most expensive tier; everything
	// Full collects stays on.
	Trace
)

// String names the level for reports and flags.
func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Counters:
		return "counters"
	case Full:
		return "full"
	case Trace:
		return "trace"
	default:
		return "unset"
	}
}

// ParseLevel maps a flag string to a Level; unknown strings return Unset.
func ParseLevel(s string) Level {
	switch s {
	case "off":
		return Off
	case "counters":
		return Counters
	case "full":
		return Full
	case "trace":
		return Trace
	default:
		return Unset
	}
}

// Registry is one collection domain's set of named metrics: one per
// simulated node, one per pipeline worker, one per experiment scheduler.
// The zero value is not usable; create registries with New. A nil
// *Registry is a valid "uninstrumented" registry: every method on it
// returns nil handles whose operations are no-ops.
type Registry struct {
	level    Level //essvet:mergeignore runtime switch, not merged state
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty registry collecting at level l (Unset collects as
// Off).
func New(l Level) *Registry {
	if l == Unset {
		l = Off
	}
	return &Registry{
		level:    l,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Level reports the current collection level (Off for a nil registry).
func (r *Registry) Level() Level {
	if r == nil {
		return Off
	}
	return r.level
}

// SetLevel switches the collection level at run time — the ioctl moment.
// Existing handles observe the change immediately. No-op on nil.
func (r *Registry) SetLevel(l Level) {
	if r == nil {
		return
	}
	if l == Unset {
		l = Off
	}
	r.level = l
}

// Counter returns the named counter, creating it on first use. Nil
// registries return nil, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{lvl: &r.level}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{lvl: &r.level}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it on
// first use with the given ascending upper bounds (an implicit +Inf
// bucket is appended). Re-registering an existing name ignores bounds
// and returns the existing histogram.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		b := make([]int64, len(bounds))
		copy(b, bounds)
		h = &Histogram{lvl: &r.level, bounds: b, buckets: make([]uint64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}

// Merge folds another registry's metric state into r, leaving r exactly
// as if every update to o had been applied to r: counters and histogram
// buckets add, gauge values add and high-waters take the maximum.
// Metrics unknown to r are adopted. Histograms with mismatched bucket
// geometry panic — merging them silently would corrupt the distribution.
func (r *Registry) Merge(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for name, oc := range o.counters {
		c, ok := r.counters[name]
		if !ok {
			c = &Counter{lvl: &r.level}
			r.counters[name] = c
		}
		c.n += oc.n
	}
	for name, og := range o.gauges {
		g, ok := r.gauges[name]
		if !ok {
			g = &Gauge{lvl: &r.level}
			r.gauges[name] = g
		}
		g.v += og.v
		if og.max > g.max {
			g.max = og.max
		}
	}
	for name, oh := range o.hists {
		h, ok := r.hists[name]
		if !ok {
			b := make([]int64, len(oh.bounds))
			copy(b, oh.bounds)
			h = &Histogram{lvl: &r.level, bounds: b, buckets: make([]uint64, len(b)+1)}
			r.hists[name] = h
		}
		h.merge(name, oh)
	}
}

// Snapshot captures every metric in sorted name order. The result is
// independent of the registry (safe to keep after further updates).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: r.counters[name].n})
	}
	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := r.gauges[name]
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: g.v, Max: g.max})
	}
	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		hs := HistSample{
			Name:    name,
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: append([]uint64(nil), h.buckets...),
			Count:   h.count,
			Sum:     h.sum,
		}
		s.Hists = append(s.Hists, hs)
	}
	return s
}

// Counter is a monotonically increasing count. Updates are active at
// Counters and above; a nil Counter is a no-op handle.
type Counter struct {
	lvl *Level
	n   uint64
}

// Add increments the counter by n when the registry level enables it.
func (c *Counter) Add(n uint64) {
	if c == nil || *c.lvl < Counters {
		return
	}
	c.n += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (0 for a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Gauge is an instantaneous value with a high-water mark. Updates are
// active at Counters and above; a nil Gauge is a no-op handle.
type Gauge struct {
	lvl    *Level
	v, max int64
}

// Set records the current value and advances the high-water mark.
func (g *Gauge) Set(v int64) {
	if g == nil || *g.lvl < Counters {
		return
	}
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the current value by d and advances the high-water mark.
func (g *Gauge) Add(d int64) {
	if g == nil || *g.lvl < Counters {
		return
	}
	g.v += d
	if g.v > g.max {
		g.max = g.v
	}
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max reports the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max
}

// Histogram counts observations into fixed buckets (ascending upper
// bounds plus an implicit +Inf overflow bucket). Observations are only
// collected at Full — histograms are the expensive tier of the level
// switch. A nil Histogram is a no-op handle.
type Histogram struct {
	lvl     *Level
	bounds  []int64  //essvet:mergeignore geometry is asserted equal in merge
	buckets []uint64 // len(bounds)+1; last is the overflow bucket
	count   uint64
	sum     int64
}

// Observe records one value when the registry is at Full.
func (h *Histogram) Observe(v int64) {
	if h == nil || *h.lvl < Full {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i]++
	h.count++
	h.sum += v
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// merge folds another histogram's buckets into h, panicking on geometry
// mismatch (name makes the panic actionable).
func (h *Histogram) merge(name string, o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("obs: histogram " + name + " merged with mismatched bucket count")
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			panic("obs: histogram " + name + " merged with mismatched bounds")
		}
	}
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	h.sum += o.sum
}

// ExpBuckets returns n ascending upper bounds starting at start and
// multiplying by factor: the usual latency/distance histogram shape.
func ExpBuckets(start, factor int64, n int) []int64 {
	if start < 1 {
		start = 1
	}
	if factor < 2 {
		factor = 2
	}
	out := make([]int64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n ascending upper bounds starting at start and
// stepping by width.
func LinearBuckets(start, width int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = start + int64(i)*width
	}
	return out
}

// Stage bundles the three counters of one pipeline stage — records,
// batches, and bytes moved — under pipeline/<name>/. A nil Stage is a
// no-op handle, so uninstrumented pipelines cost one comparison.
type Stage struct {
	records *Counter
	batches *Counter
	bytes   *Counter
}

// Stage returns the named pipeline stage, creating its counters on
// first use.
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	return &Stage{
		records: r.Counter("pipeline/" + name + "/records"),
		batches: r.Counter("pipeline/" + name + "/batches"),
		bytes:   r.Counter("pipeline/" + name + "/bytes"),
	}
}

// Observe counts records and bytes moving through the stage.
func (st *Stage) Observe(records, bytes int) {
	if st == nil {
		return
	}
	st.records.Add(uint64(records))
	st.bytes.Add(uint64(bytes))
}

// ObserveBatch counts one whole batch moving through the stage.
func (st *Stage) ObserveBatch(records, bytes int) {
	if st == nil {
		return
	}
	st.records.Add(uint64(records))
	st.batches.Inc()
	st.bytes.Add(uint64(bytes))
}

// Records reports how many records the stage has seen.
func (st *Stage) Records() uint64 {
	if st == nil {
		return 0
	}
	return st.records.Value()
}
