package obs

// The span tracer gives each pipeline or kernel stage a start/end pair
// measured on a caller-supplied deterministic clock — the simulation's
// virtual time for kernel stages, a record/batch counter for the
// analysis pipeline. Never a wall clock: span durations must be a pure
// function of the workload, so same-seed runs trace identically.
//
// Spans are aggregated, not logged: each End folds into three metrics
// under span/<stage>/ (spans, ticks, and a duration histogram), which
// merge across workers like every other metric. Collection is gated at
// Full; below that Start returns an inert span and the cost is one
// comparison.

// Tracer mints stage timers against one registry and one clock.
type Tracer struct {
	r     *Registry
	clock func() int64
}

// NewTracer returns a tracer drawing timestamps from clock. The clock
// must be deterministic — sim time or an operation count. A nil
// registry or nil clock yields an inert tracer.
func NewTracer(r *Registry, clock func() int64) *Tracer {
	if r == nil || clock == nil {
		return nil
	}
	return &Tracer{r: r, clock: clock}
}

// spanDurBounds buckets span durations; the unit is whatever the
// tracer's clock counts (µs of sim time, records, batches).
var spanDurBounds = ExpBuckets(1, 4, 12)

// StageTimer times one named stage. A nil StageTimer is a no-op handle.
type StageTimer struct {
	t     *Tracer
	spans *Counter
	ticks *Counter
	dur   *Histogram
}

// Stage returns the named stage timer, creating its metrics on first
// use.
func (t *Tracer) Stage(name string) *StageTimer {
	if t == nil {
		return nil
	}
	return &StageTimer{
		t:     t,
		spans: t.r.Counter("span/" + name + "/spans"),
		ticks: t.r.Counter("span/" + name + "/ticks"),
		dur:   t.r.Histogram("span/"+name+"/dur", spanDurBounds),
	}
}

// Span is one in-flight timed interval; End folds it into the stage's
// metrics. The zero Span is inert.
type Span struct {
	st    *StageTimer
	start int64
}

// Start opens a span when the registry is at Full; otherwise the
// returned span is inert and End is free.
func (st *StageTimer) Start() Span {
	if st == nil || st.t.r.Level() < Full {
		return Span{}
	}
	return Span{st: st, start: st.t.clock()}
}

// End closes the span, recording one span, its tick count, and its
// duration distribution.
func (s Span) End() {
	if s.st == nil {
		return
	}
	d := s.st.t.clock() - s.start
	if d < 0 {
		d = 0
	}
	s.st.spans.Inc()
	s.st.ticks.Add(uint64(d))
	s.st.dur.Observe(d)
}
