package essio_test

// The columnar pipeline's end-to-end oracle: for each of the five
// experiments (E0 baseline through E4 combined), the characterization
// computed from a columnar-encoded copy of the trace must render byte
// for byte the same profile as the row pipeline over the original
// records. This is the acceptance gate the ISSUE states: the column
// codec, the column views, and the vectorized accumulator folds are
// allowed to change the cost of the pass, never its output.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"essio"
	"essio/internal/trace"
)

func TestColumnarCharacterizationMatchesRowOracle(t *testing.T) {
	for _, kind := range essio.Kinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			res, err := essio.Run(essio.SmallConfig(kind, 2))
			if err != nil {
				t.Fatal(err)
			}

			// Row pipeline: records fed one by one, no column views
			// anywhere.
			rowProf := essio.NewProfiler(string(res.Kind), res.Duration, res.Nodes, res.DiskSectors)
			for _, r := range res.Merged {
				if err := rowProf.Add(r); err != nil {
					t.Fatal(err)
				}
			}

			// Columnar pipeline: encode the same trace with the column
			// codec, decode it back as column views, and fold them through
			// the vectorized accumulators via the Copy fast path.
			var buf bytes.Buffer
			if err := trace.WriteCol(&buf, res.Merged); err != nil {
				t.Fatal(err)
			}
			colProf := essio.NewProfiler(string(res.Kind), res.Duration, res.Nodes, res.DiskSectors)
			n, err := trace.Copy(colProf, trace.NewColReader(bytes.NewReader(buf.Bytes())))
			if err != nil {
				t.Fatal(err)
			}
			if n != len(res.Merged) {
				t.Fatalf("columnar pass saw %d records, trace has %d", n, len(res.Merged))
			}

			rp, cp := rowProf.Profile(), colProf.Profile()
			if !reflect.DeepEqual(rp, cp) {
				t.Errorf("%s: columnar profile state diverged from row oracle", kind)
			}
			rs, cs := rp.String(), cp.String()
			if rs != cs {
				t.Fatalf("%s: rendered profiles differ\n--- row ---\n%s\n--- columnar ---\n%s", kind, rs, cs)
			}
			// Round-trip sanity on the same trace: the decoded records are
			// exactly the originals.
			got, err := trace.ReadCol(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(res.Merged) || !reflect.DeepEqual(got, res.Merged) {
				t.Fatalf("%s: columnar round trip diverged", kind)
			}
			// And the columnar file must not cost more than the fixed-width
			// binary encoding on real experiment traces.
			var bin bytes.Buffer
			if err := trace.WriteAll(&bin, res.Merged); err != nil {
				t.Fatal(err)
			}
			if buf.Len() >= bin.Len() && len(res.Merged) > 0 {
				t.Errorf("%s: columnar file (%d bytes) not smaller than binary (%d bytes)",
					kind, buf.Len(), bin.Len())
			}
			t.Log(fmt.Sprintf("%s: %d records, binary %d bytes, columnar %d bytes (%.1f%%)",
				kind, len(res.Merged), bin.Len(), buf.Len(),
				100*float64(buf.Len())/float64(bin.Len())))
		})
	}
}
