#!/bin/sh
# essd_smoke.sh — end-to-end daemon smoke test: capture an E1 (PPM)
# trace, start essd, stream the trace at it with curl, and require the
# streamed characterization to match `essanalyze` output byte for
# byte; then scrape /metrics and shut the daemon down cleanly.
#
# Usage: scripts/essd_smoke.sh
# Environment: ESSD_ADDR (default 127.0.0.1:9407)
set -eu

cd "$(dirname "$0")/.."

ADDR="${ESSD_ADDR:-127.0.0.1:9407}"
work="$(mktemp -d)"
essd_pid=""
cleanup() {
    [ -n "$essd_pid" ] && kill "$essd_pid" 2>/dev/null && wait "$essd_pid" 2>/dev/null
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/essd" ./cmd/essd
go build -o "$work/esstrace" ./cmd/esstrace
go build -o "$work/essanalyze" ./cmd/essanalyze

"$work/esstrace" -kind ppm -small -nodes 2 -o "$work/e1.trc"
"$work/essanalyze" -i "$work/e1.trc" -label e1 \
    -hist -spatial -temporal -queue -origins > "$work/expected.txt"

"$work/essd" -addr "$ADDR" &
essd_pid=$!
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "essd never came up" >&2; exit 1; }
    sleep 0.1
done

curl -fsS --data-binary "@$work/e1.trc" \
    "http://$ADDR/v1/traces?label=e1&hist=1&spatial=1&temporal=1&queue=1&origins=1" \
    > "$work/events.ndjson"

tail -n1 "$work/events.ndjson" | jq -e '.event == "done" and .records > 0 and (.hash | startswith("sha256:"))' >/dev/null
tail -n1 "$work/events.ndjson" | jq -j '.characterization' > "$work/got.txt"
if ! diff -u "$work/expected.txt" "$work/got.txt"; then
    echo "streamed characterization diverges from essanalyze output" >&2
    exit 1
fi
echo "characterization matches essanalyze byte for byte"

curl -fsS "http://$ADDR/metrics" > "$work/metrics.txt"
grep -q '^essio_wall_ingest_streams 1$' "$work/metrics.txt"
grep -q '^essio_wall_http_ingest_requests 1$' "$work/metrics.txt"
echo "metrics scrape ok"

kill -TERM "$essd_pid"
wait "$essd_pid"
essd_pid=""
echo "clean shutdown ok"
