#!/bin/sh
# benchjson.sh — run the repo benchmarks and record the results as a
# BENCH_<date>.json artifact, so the performance trajectory of the
# reproduction is tracked over time.
#
# Usage: scripts/benchjson.sh [bench-regex] [output-file]
#
#   bench-regex   which benchmarks to run (go test -bench syntax).
#                 Defaults to the fast microbenchmarks; pass '.' for
#                 everything (the Table/Figure/Ablation benchmarks run
#                 full experiments and take minutes each).
#   output-file   defaults to BENCH_<YYYYMMDD>.json in the repo root.
#
# Environment: BENCHTIME overrides -benchtime (default 1x).
set -eu

cd "$(dirname "$0")/.."

# Benchmarks of unvetted code measure the wrong thing: refuse to run
# unless go vet and the repo's own essvet analyzers pass.
echo "gating on go vet + essvet" >&2
go vet ./... || { echo "benchjson.sh: go vet failed, not benching" >&2; exit 1; }
go run ./cmd/essvet ./... || { echo "benchjson.sh: essvet failed, not benching" >&2; exit 1; }

pattern=${1:-'DiskService|ElevatorSubmit|TraceMarshal|EngineEvents|EngineStep|E1Sharded|MergeBatch|MergeStreaming|MergeHeap|MergeLoserTree|CharacterizeParallel|CharacterizeStreaming|CharacterizeObs|BufferCacheHit|EthernetTransfer|PVMBarrier16|WaveletTransform512|PPMStep240x480|NBodyStep8K'}
out=${2:-BENCH_$(date +%Y%m%d).json}
benchtime=${BENCHTIME:-1x}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . ./internal/trace | tee "$raw" >&2

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go env GOVERSION)" \
    -v pattern="$pattern" \
    -v benchtime="$benchtime" '
function esc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
BEGIN {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", esc(date)
    printf "  \"go\": \"%s\",\n", esc(gover)
    printf "  \"pattern\": \"%s\",\n", esc(pattern)
    printf "  \"benchtime\": \"%s\",\n", esc(benchtime)
    printf "  \"benchmarks\": ["
    n = 0
}
/^Benchmark/ && NF >= 4 {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", esc(name), $2
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) printf ", "
        printf "\"%s\": %s", esc($(i + 1)), $i
    }
    printf "}}"
}
END {
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
