#!/bin/sh
# benchjson.sh — run the repo benchmarks and record the results as a
# BENCH_<date>.json artifact, so the performance trajectory of the
# reproduction is tracked over time.
#
# Usage: scripts/benchjson.sh [bench-regex] [output-file]
#
#   bench-regex   which benchmarks to run (go test -bench syntax).
#                 Defaults to the fast microbenchmarks; pass '.' for
#                 everything (the Table/Figure/Ablation benchmarks run
#                 full experiments and take minutes each).
#   output-file   defaults to BENCH_<YYYYMMDD>.json in the repo root
#                 (BENCH_<YYYYMMDD>.N.json if that already exists).
#
# Environment: BENCHTIME overrides -benchtime for every run. By default
# the sub-second microbenchmarks (merge, characterize, codecs) run at
# -benchtime=100x so per-iteration noise averages out, while the
# multi-second whole-experiment benchmarks (E1Sharded) stay at 1x.
set -eu

cd "$(dirname "$0")/.."

# Benchmarks of unvetted code measure the wrong thing: refuse to run
# unless go vet and the repo's own essvet analyzers pass.
echo "gating on go vet + essvet" >&2
go vet ./... || { echo "benchjson.sh: go vet failed, not benching" >&2; exit 1; }
go run ./cmd/essvet ./... || { echo "benchjson.sh: essvet failed, not benching" >&2; exit 1; }

micro='DiskService|ElevatorSubmit|TraceMarshal|EngineEvents|EngineStep|MergeBatch|MergeStreaming|MergeHeap|MergeLoserTree|CharacterizeParallel|CharacterizeStreaming|CharacterizeColumnar|CharacterizeObs|CharacterizeTrace|ColWrite|ColRead|ColMmap|BufferCacheHit|EthernetTransfer|PVMBarrier16|WaveletTransform512|PPMStep240x480|NBodyStep8K'
slow='E1Sharded'
pattern=${1:-"$micro|$slow"}
out=${2:-}
if [ -z "$out" ]; then
    # Never clobber an earlier artifact from the same day: each run's
    # numbers are a point on the performance trajectory.
    out=BENCH_$(date +%Y%m%d).json
    i=2
    while [ -e "$out" ]; do
        out=BENCH_$(date +%Y%m%d).$i.json
        i=$((i + 1))
    done
fi
micro_benchtime=${BENCHTIME:-100x}
slow_benchtime=${BENCHTIME:-1x}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

benchtime="micro=$micro_benchtime slow=$slow_benchtime"
if [ $# -ge 1 ]; then
    # Explicit pattern: one run, one benchtime (default 100x).
    benchtime=$micro_benchtime
    go test -run '^$' -bench "$pattern" -benchtime "$benchtime" . ./internal/trace | tee "$raw" >&2
else
    # Default sweep: microbenchmarks at 100x for stable numbers, then the
    # multi-second experiment benchmarks at 1x; awk folds both outputs
    # into one artifact.
    go test -run '^$' -bench "$micro" -benchtime "$micro_benchtime" . ./internal/trace | tee "$raw" >&2
    go test -run '^$' -bench "$slow" -benchtime "$slow_benchtime" . | tee -a "$raw" >&2
fi

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gover="$(go env GOVERSION)" \
    -v pattern="$pattern" \
    -v benchtime="$benchtime" '
function esc(s) { gsub(/\\/, "\\\\", s); gsub(/"/, "\\\"", s); return s }
BEGIN {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", esc(date)
    printf "  \"go\": \"%s\",\n", esc(gover)
    printf "  \"pattern\": \"%s\",\n", esc(pattern)
    printf "  \"benchtime\": \"%s\",\n", esc(benchtime)
    printf "  \"benchmarks\": ["
    n = 0
}
/^Benchmark/ && NF >= 4 {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", esc(name), $2
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) printf ", "
        printf "\"%s\": %s", esc($(i + 1)), $i
    }
    printf "}}"
}
END {
    printf "\n  ]\n}\n"
}' "$raw" > "$out"

echo "wrote $out" >&2
