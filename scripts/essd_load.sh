#!/bin/sh
# essd_load.sh — start an essd daemon, drive it with N concurrent
# synthetic trace streams via `esssynth load`, and shut it down
# cleanly. Prints the load generator's latency/rejection report.
#
# Usage: scripts/essd_load.sh [streams] [records-per-stream]
#
#   streams             concurrent uploads (default 1000)
#   records             records per stream  (default 5000)
#
# Environment:
#   ESSD_ADDR     listen address      (default 127.0.0.1:9406)
#   ESSD_INGEST   max concurrent uploads, 0 = unlimited (default 0,
#                 so a full-admission run has zero 429s; set it low to
#                 watch admission control reject)
#   ESSD_FLAGS    extra essd flags
set -eu

cd "$(dirname "$0")/.."

STREAMS="${1:-1000}"
RECORDS="${2:-5000}"
ADDR="${ESSD_ADDR:-127.0.0.1:9406}"
INGEST="${ESSD_INGEST:-0}"

bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT
go build -o "$bin/essd" ./cmd/essd
go build -o "$bin/esssynth" ./cmd/esssynth

"$bin/essd" -addr "$ADDR" -ingest "$INGEST" ${ESSD_FLAGS:-} &
essd_pid=$!
trap 'kill "$essd_pid" 2>/dev/null; wait "$essd_pid" 2>/dev/null; rm -rf "$bin"' EXIT

# Wait for the daemon to answer.
i=0
until curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "essd never came up" >&2; exit 1; }
    sleep 0.1
done

# set -e aborts here on a failed load run; the EXIT trap still reaps
# the daemon.
"$bin/esssynth" load -url "http://$ADDR" -streams "$STREAMS" -records "$RECORDS"

# Graceful shutdown: SIGTERM, then wait for the drain.
kill -TERM "$essd_pid"
wait "$essd_pid"
trap 'rm -rf "$bin"' EXIT
