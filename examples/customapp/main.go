// Customapp: characterize your own workload with the same instrumentation
// the paper used. This example defines a "checkpointing solver" — a
// compute-heavy code that periodically dumps large state files — installs
// it on a simulated cluster, and reports what the disks saw.
package main

import (
	"fmt"
	"log"

	"essio"
)

func main() {
	c, err := essio.NewCluster(essio.ClusterConfig{Nodes: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	const checkpointBytes = 256 * 1024
	prog := &essio.Program{
		Name:      "ckptsolver",
		ImagePath: "/usr/bin/ckptsolver",
		TextBytes: 256 * 1024,
		Main: func(ctx *essio.Process) {
			p := ctx.P()
			state := ctx.Alloc("state", 2<<20)
			buf := make([]byte, checkpointBytes)
			for iter := 0; iter < 4; iter++ {
				// Compute phase: sweep the state with real CPU cost.
				if err := state.TouchRange(p, 0, state.Size(), true); err != nil {
					panic(err)
				}
				ctx.ComputeFlops(20e6) // ~5 s at 4 MFLOPS
				// Checkpoint phase: dump state to disk.
				fd, err := ctx.FD.CreateIn(p, fmt.Sprintf("/home/ckpt.%d", iter), -1)
				if err != nil {
					panic(err)
				}
				if _, err := ctx.FD.Write(p, fd, buf); err != nil {
					panic(err)
				}
				if err := ctx.FD.Fsync(p, fd); err != nil {
					panic(err)
				}
				ctx.FD.Close(fd)
			}
		},
	}

	if err := c.Install(prog); err != nil {
		log.Fatal(err)
	}
	c.StartTracing()
	procs := c.Launch(prog)
	if _, ok := c.WaitAll(procs, 30*essio.Minute); !ok {
		log.Fatal("solver did not finish")
	}
	c.RunFor(30 * essio.Second) // catch trailing write-back
	c.StopTracing()

	recs := c.MergedTrace()
	fmt.Println(essio.Summarize("ckptsolver", recs, 0, len(c.Nodes)))
	fmt.Printf("total requests: %d\n", len(recs))

	// Checkpoint dumps arrive as large merged writes; count them.
	big := 0
	for _, r := range recs {
		if r.Op == essio.Write && r.KB() >= 8 {
			big++
		}
	}
	fmt.Printf("large (>=8 KB) checkpoint writes: %d\n", big)
}
