// Synthesis: the full workload-reconstruction loop. Measure the paper's
// combined experiment (E4), fit a generative WorkloadModel from the
// driver trace, sample a synthetic trace ten times longer than the
// measurement, validate that the synthetic load is statistically
// indistinguishable from the measured one, and replay both against an
// alternative disk to show the synthetic stream drives the same tuning
// conclusions — without rerunning the applications.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"essio"
)

func main() {
	full := flag.Bool("full", false, "run the full 16-node paper configuration")
	save := flag.String("save", "", "also write the fitted model JSON to this file")
	flag.Parse()

	// 1. Measure: run the combined workload and merge the node traces.
	cfg := essio.SmallConfig(essio.Combined, 4)
	if *full {
		cfg = essio.Config{Kind: essio.Combined, Nodes: 16}
	}
	res, err := essio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(essio.Summarize("measured", res.Merged, res.Duration, res.Nodes))

	// 2. Fit: one streaming pass over the merged trace yields the model.
	m := essio.FitModelSlice("combined", res.Merged, res.Nodes, res.DiskSectors, 0)
	fmt.Printf("\nfitted model: %v\n", m)
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("model written to %s\n", *save)
	}

	// 3. Generate: a seeded synthetic trace 10x the measured span. The
	// generator is a TraceSource, so it feeds any pipeline consumer.
	span := 10 * res.Duration
	gen, err := essio.NewSynth(m, essio.SynthOptions{Seed: 1, Duration: span})
	if err != nil {
		log.Fatal(err)
	}
	synth, err := essio.CollectTrace(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %d records over %v (10x the measured %v)\n",
		len(synth), span, res.Duration)

	// 4. Validate: refit on the synthetic stream and compare models.
	refit := essio.FitModelSlice("synthetic", synth, res.Nodes, res.DiskSectors, 0)
	d := essio.ModelDistance(m, refit)
	fmt.Printf("\nmodel distance (measured vs synthetic):\n%v\n", d)
	if err := d.Check(essio.DefaultModelTolerance()); err != nil {
		log.Fatal("validation failed: ", err)
	}
	fmt.Println("within tolerance: the synthetic load is statistically faithful")

	// 5. Replay both against a faster drive: the tuning question the study
	// asks ("what would this workload do on different hardware?") gets the
	// same answer from the synthetic stream.
	fast := essio.DefaultDiskParams()
	fast.TransferRate *= 4
	fast.TrackSeek /= 2
	fast.FullSeek /= 2
	for _, tc := range []struct {
		name string
		recs []essio.Record
	}{{"measured", res.Merged}, {"synthetic", synth}} {
		rep, err := essio.ReplayTrace(tc.recs, essio.ReplayConfig{Disk: fast})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreplay of %s trace on 4x-transfer drive:\n%v\n", tc.name, rep)
	}
}
