// Combined: the paper's production-mix experiment — PPM, wavelet, and
// N-body running concurrently on every node — followed by the spatial and
// temporal locality analysis of Figures 6–8.
package main

import (
	"flag"
	"fmt"
	"log"

	"essio"
)

func main() {
	full := flag.Bool("full", false, "run the full 16-node paper configuration")
	flag.Parse()

	cfg := essio.SmallConfig(essio.Combined, 4)
	if *full {
		cfg = essio.Config{Kind: essio.Combined, Nodes: 16}
	}
	res, err := essio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(essio.Summarize("combined", res.Merged, res.Duration, res.Nodes))
	fmt.Println()

	// Figure 6: where on the disk did the combined load go?
	fig, err := essio.Figure(6, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	// Figure 7: spatial locality — the study found roughly an 80/20
	// concentration in the low sector bands.
	fig, err = essio.Figure(7, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	// Figure 8: temporal locality — hot spots from swap-slot reuse and
	// log appends.
	fig, err = essio.Figure(8, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig)

	heat := essio.TemporalHeat(res.Merged, res.Duration)
	fmt.Println("hottest sectors:")
	for _, h := range essio.Hottest(heat, 5) {
		fmt.Printf("  sector %7d  %5d accesses  %.3f/s\n", h.Sector, h.Count, h.PerSec)
	}
}
