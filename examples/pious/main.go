// Pious: coordinated parallel I/O through the PIOUS-style parallel file
// system that was available on the Beowulf prototype. A client writes one
// large declustered file; the stripes land on every node's local disk, and
// each node's instrumented driver sees its share of the traffic.
package main

import (
	"fmt"
	"log"

	"essio"
)

func main() {
	c, err := essio.NewCluster(essio.ClusterConfig{Nodes: 4, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	pfs := essio.NewPious(c)
	c.RunFor(essio.Second) // let the data servers start

	c.StartTracing()
	const fileBytes = 512 * 1024
	done := false
	task := c.PVM.Enroll(0)
	c.SpawnOn(0, "client", func(p *essio.Proc) {
		f, err := pfs.Open(p, task, "dataset", true)
		if err != nil {
			log.Fatal(err)
		}
		payload := make([]byte, fileBytes)
		for i := range payload {
			payload[i] = byte(i)
		}
		if _, err := f.WriteAt(p, task, 0, payload); err != nil {
			log.Fatal(err)
		}
		// Read it back through the stripes.
		back := make([]byte, fileBytes)
		if _, err := f.ReadAt(p, task, 0, back); err != nil {
			log.Fatal(err)
		}
		for i := range back {
			if back[i] != payload[i] {
				log.Fatalf("byte %d corrupt", i)
			}
		}
		f.Close(p, task)
		done = true
	})
	for !done {
		c.RunFor(essio.Second)
	}
	c.RunFor(30 * essio.Second) // trailing write-back
	c.StopTracing()

	fmt.Printf("wrote and verified a %d KB file declustered over %d nodes (stripe unit %d bytes)\n",
		fileBytes/1024, pfs.Servers(), pfs.StripeUnit())
	for i, tr := range c.Traces() {
		data := 0
		for _, r := range tr {
			if r.Origin == essio.OriginData {
				data++
			}
		}
		fmt.Printf("  node %d: %3d requests total, %3d parallel-file data requests\n", i, len(tr), data)
	}
}
