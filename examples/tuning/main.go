// Tuning: the paper's stated next step, end to end — characterize a
// measured workload, derive a tuning parameter set, and evaluate hardware
// and queueing alternatives by replaying the captured trace.
package main

import (
	"fmt"
	"log"

	"essio"
)

func main() {
	// Capture a workload: the wavelet experiment (the study's most
	// I/O-intensive application).
	res, err := essio.Run(essio.SmallConfig(essio.Wavelet, 2))
	if err != nil {
		log.Fatal(err)
	}

	// Characterize it.
	prof := essio.CharacterizeResult(res)
	fmt.Println(prof)

	// Derive the tuning parameter set the paper proposes.
	d := prof.Derive(16)
	fmt.Printf("derived parameters: read-ahead %d KB, %s policy", d.ReadAheadKB, d.WritePolicy)
	if d.SuggestedMemoryMB > 16 {
		fmt.Printf(", memory -> %d MB", d.SuggestedMemoryMB)
	}
	fmt.Println()
	for _, r := range d.Rationale {
		fmt.Println("  -", r)
	}
	fmt.Println()

	// Evaluate disk/queue alternatives by trace replay.
	base, err := essio.ReplayTrace(res.Merged, essio.ReplayConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("baseline config:  ", base)

	noMerge, err := essio.ReplayTrace(res.Merged, essio.ReplayConfig{MaxRequestSectors: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("no merging:       ", noMerge)

	fast := essio.DefaultDiskParams()
	fast.TransferRate *= 4
	fast.TrackSeek /= 2
	fast.FullSeek /= 2
	faster, err := essio.ReplayTrace(res.Merged, essio.ReplayConfig{Disk: fast})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4x faster disk:   ", faster)

	closed, err := essio.ReplayTrace(res.Merged, essio.ReplayConfig{ClosedLoop: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("closed-loop limit:", closed)

	fmt.Printf("\nmean wait: %.1f ms baseline vs %.1f ms without merging vs %.1f ms on the faster disk\n",
		base.MeanWaitMs, noMerge.MeanWaitMs, faster.MeanWaitMs)
}
