// Quickstart: run the wavelet decomposition workload on a small simulated
// Beowulf cluster and look at what the instrumented disk driver saw.
package main

import (
	"fmt"
	"log"
	"sort"

	"essio"
)

func main() {
	// A scaled-down wavelet run on 2 nodes finishes in about a second of
	// wall time; swap SmallConfig for Config{Kind: essio.Wavelet} to run
	// the paper's full 16-node configuration.
	cfg := essio.SmallConfig(essio.Wavelet, 2)
	res, err := essio.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Table-1-style summary: read/write mix and request rate per disk.
	fmt.Println(essio.Summarize("wavelet", res.Merged, res.Duration, res.Nodes))

	// Request-size histogram: the paper's three classes should be
	// visible — 1 KB block I/O, 4 KB paging, larger streaming reads.
	hist := essio.SizeHistogram(res.Merged)
	sizes := make([]int, 0, len(hist))
	for kb := range hist {
		sizes = append(sizes, kb)
	}
	sort.Ints(sizes)
	fmt.Println("\nrequest sizes:")
	for _, kb := range sizes {
		fmt.Printf("  %3d KB: %d\n", kb, hist[kb])
	}

	// The first few trace records, exactly as the instrumented driver
	// emitted them: timestamp, R/W flag, sector, length, queue depth.
	fmt.Println("\nfirst trace records:")
	for i, r := range res.Merged {
		if i >= 10 {
			break
		}
		fmt.Println(" ", r)
	}
}
