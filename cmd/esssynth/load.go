package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"essio"
	"essio/internal/model"
	"essio/internal/synth"
	"essio/internal/trace"
)

// runLoad is the essd load generator: it drives N concurrent synthetic
// trace streams at a running daemon and reports ingest latency
// percentiles plus admission-control rejections. Each stream uploads a
// seeded, deterministic trace (sampled from -m when given, fabricated
// otherwise), so any server-side corruption shows up as a record-count
// or hash mismatch and is counted as an incorrect response.
func runLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	url := fs.String("url", "http://localhost:9406", "essd base URL")
	streams := fs.Int("streams", 32, "concurrent synthetic streams")
	records := fs.Int("records", 10000, "records per stream")
	seed := fs.Int64("seed", 1, "base seed; stream i uses seed+i")
	modelPath := fs.String("m", "", "sample records from this model (default: fabricated)")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-stream HTTP timeout")
	query := fs.String("query", "", "extra query string for /v1/traces (e.g. \"hist=1&queue=1\")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *streams <= 0 || *records <= 0 {
		return fmt.Errorf("need positive -streams and -records")
	}

	var m *model.WorkloadModel
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		var rerr error
		m, rerr = model.ReadJSON(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
	}

	// Pre-encode every stream's upload so the measured latency is the
	// daemon's, not the generator's.
	bodies := make([][]byte, *streams)
	wantRecords := make([]int, *streams)
	for i := range bodies {
		recs, err := loadRecords(m, *seed+int64(i), *records)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		w := trace.NewWriter(&buf)
		if err := w.AddBatch(recs); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		bodies[i] = buf.Bytes()
		wantRecords[i] = len(recs)
	}

	target := *url + "/v1/traces"
	if *query != "" {
		target += "?" + *query
	}
	// Expect: 100-continue defers each body until the daemon commits to
	// reading it, so an admission 429 arrives as a clean response rather
	// than a broken pipe halfway through a multi-megabyte upload.
	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost:   *streams,
			ExpectContinueTimeout: time.Second,
		},
	}
	latencies := make([]time.Duration, *streams)
	var ok, rejected, incorrect atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(bodies[i]))
			if err != nil {
				incorrect.Add(1)
				fmt.Fprintf(os.Stderr, "stream %d: %v\n", i, err)
				return
			}
			req.Header.Set("Content-Type", "application/octet-stream")
			req.Header.Set("Expect", "100-continue")
			resp, err := client.Do(req)
			if err != nil {
				incorrect.Add(1)
				fmt.Fprintf(os.Stderr, "stream %d: %v\n", i, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusTooManyRequests:
				rejected.Add(1)
				io.Copy(io.Discard, resp.Body)
				return
			default:
				incorrect.Add(1)
				b, _ := io.ReadAll(resp.Body)
				fmt.Fprintf(os.Stderr, "stream %d: status %d: %s\n", i, resp.StatusCode, b)
				return
			}
			done, err := drainEvents(resp.Body)
			latencies[i] = time.Since(t0)
			if err != nil || done.Event != "done" || done.Records != wantRecords[i] {
				incorrect.Add(1)
				fmt.Fprintf(os.Stderr, "stream %d: event %q records %d (want %d) err %v\n",
					i, done.Event, done.Records, wantRecords[i], err)
				return
			}
			ok.Add(1)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	served := make([]time.Duration, 0, *streams)
	var totalRecords int64
	for i, l := range latencies {
		if l > 0 {
			served = append(served, l)
			totalRecords += int64(wantRecords[i])
		}
	}
	sort.Slice(served, func(a, b int) bool { return served[a] < served[b] })
	fmt.Printf("essd load: %d streams x %d records against %s\n", *streams, *records, target)
	fmt.Printf("  ok %d  rejected(429) %d  incorrect %d  wall %.2fs\n",
		ok.Load(), rejected.Load(), incorrect.Load(), wall.Seconds())
	if len(served) > 0 {
		fmt.Printf("  ingest latency p50 %s  p95 %s  p99 %s  max %s\n",
			pct(served, 50), pct(served, 95), pct(served, 99), served[len(served)-1])
		fmt.Printf("  throughput %.0f records/s (%0.1f MB/s)\n",
			float64(totalRecords)/wall.Seconds(),
			float64(totalRecords)*trace.RecordSize/1e6/wall.Seconds())
	}
	if incorrect.Load() > 0 {
		return fmt.Errorf("%d incorrect responses", incorrect.Load())
	}
	return nil
}

// loadRecords produces one stream's deterministic upload: model-driven
// when a model was given, a seeded fabrication otherwise.
func loadRecords(m *model.WorkloadModel, seed int64, n int) ([]trace.Record, error) {
	if m != nil {
		return synth.Generate(m, synth.Options{Seed: uint64(seed)}, n)
	}
	rng := rand.New(rand.NewSource(seed))
	recs := make([]trace.Record, n)
	t := int64(0)
	for i := range recs {
		t += int64(rng.Intn(5000) + 1)
		recs[i] = trace.Record{
			Time:    essio.Time(t),
			Sector:  uint32(rng.Intn(1024000)),
			Count:   uint16(2 << rng.Intn(5)),
			Pending: uint16(rng.Intn(6)),
			Op:      trace.Op(rng.Intn(2)),
			Node:    uint8(rng.Intn(16)),
			Origin:  trace.Origin(1 + rng.Intn(6)),
		}
	}
	return recs, nil
}

// loadEvent mirrors essd's NDJSON ingest event shape.
type loadEvent struct {
	Event   string `json:"event"`
	Records int    `json:"records"`
	Hash    string `json:"hash"`
	Error   string `json:"error"`
}

func drainEvents(r io.Reader) (loadEvent, error) {
	var last loadEvent
	dec := json.NewDecoder(r)
	for {
		var ev loadEvent
		if err := dec.Decode(&ev); err == io.EOF {
			return last, nil
		} else if err != nil {
			return last, err
		}
		last = ev
	}
}

// pct reads the p-th percentile from sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}
