// Command esssynth fits generative workload models from captured traces,
// generates synthetic traces from them, and validates how close two
// workloads are — the reconstruction step that turns the study's
// characterization into a reusable load generator.
//
// Usage:
//
//	esssynth fit -i combined.trc -o combined.model.json
//	esssynth generate -m combined.model.json -o synth.trc -duration 7000 -seed 1
//	esssynth generate -m combined.model.json -o big.trc -duration 700 -nodes 64 -rate 2
//	esssynth validate -a combined.trc -b synth.trc
//	esssynth load -url http://localhost:9406 -streams 1000 -records 5000
//
// fit reads any trace the pipeline can decode (binary or text, sniffed by
// default) and writes the model as JSON, suitable for diffing and version
// control. generate samples a seeded, deterministic synthetic trace with
// optional scaling (duration, node count, rate multiplier, read-fraction
// override). validate fits both inputs (trace files, or .json model
// files, mixed freely) and reports the model distance — KS on sizes and
// inter-arrivals, chi-square on spatial bands, relative errors on
// mix/rate — failing with exit status 1 when the distance exceeds
// tolerance.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"essio"
	"essio/internal/profiling"
)

// profileFlags registers the shared -cpuprofile/-memprofile flags on fs
// and returns a starter to call after fs.Parse; the starter's stop
// function flushes both profiles and is safe to defer.
func profileFlags(fs *flag.FlagSet) func() (func() error, error) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem := fs.String("memprofile", "", "write a heap profile to this file at exit")
	return func() (func() error, error) {
		return profiling.Start(*cpu, *mem)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fit":
		err = runFit(os.Args[2:])
	case "generate":
		err = runGenerate(os.Args[2:])
	case "validate":
		err = runValidate(os.Args[2:])
	case "load":
		err = runLoad(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "esssynth: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "esssynth:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  esssynth fit      -i trace -o model.json [-format auto|bin|text|col] [-label L] [-nodes N] [-disk SECTORS] [-band SECTORS]
  esssynth generate -m model.json -o trace -duration SECONDS [-format bin|text|col] [-seed N] [-nodes N] [-rate X] [-readfrac F] [-max N]
  esssynth validate -a trace-or-model -b trace-or-model [-disk SECTORS] [-band SECTORS] [-sizeks F] [-minbandp F]
  esssynth load     -url http://host:9406 [-streams N] [-records N] [-seed N] [-m model.json] [-query Q] [-timeout D]`)
}

func runFit(args []string) (err error) {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	out := fs.String("o", "", "output model JSON file (required, - for stdout)")
	format := fs.String("format", "auto", "input format: auto, bin, text, or col")
	label := fs.String("label", "", "model label (default: input file name)")
	nodes := fs.Int("nodes", 0, "node count (0 = infer from trace)")
	disk := fs.Uint("disk", 1024000, "disk size in sectors")
	band := fs.Uint("band", 0, "spatial band width in sectors (0 = 100000)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("fit: -i and -o are required")
	}
	if *label == "" {
		*label = *in
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	src, err := essio.OpenTraceFile(*in, *format)
	if err != nil {
		return err
	}
	defer src.Close()
	m, err := essio.FitModel(*label, src, *nodes, uint32(*disk), uint32(*band))
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := m.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, m)
	return nil
}

func runGenerate(args []string) (err error) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	modelPath := fs.String("m", "", "input model JSON file (required)")
	out := fs.String("o", "", "output trace file (required, - for stdout)")
	format := fs.String("format", "bin", "output format: bin, text, or col")
	seed := fs.Uint64("seed", 1, "random seed (same seed, same trace)")
	duration := fs.Float64("duration", 0, "generated span in seconds (required unless -max)")
	nodes := fs.Int("nodes", 0, "node count (0 = model's)")
	rate := fs.Float64("rate", 1, "request-rate multiplier")
	readfrac := fs.Float64("readfrac", -1, "override read fraction in [0,1] (-1 = keep model's)")
	max := fs.Int("max", 0, "stop after this many records (0 = no cap)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	if *modelPath == "" || *out == "" {
		return fmt.Errorf("generate: -m and -o are required")
	}
	if *duration <= 0 && *max <= 0 {
		return fmt.Errorf("generate: one of -duration or -max is required (the trace is unbounded otherwise)")
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	m, err := readModel(*modelPath)
	if err != nil {
		return err
	}
	opts := essio.SynthOptions{
		Seed:           *seed,
		Duration:       essio.DurationOf(*duration),
		Nodes:          *nodes,
		RateMultiplier: *rate,
	}
	if *readfrac >= 0 {
		opts.OverrideReadFraction = true
		opts.ReadFraction = *readfrac
	}
	g, err := essio.NewSynth(m, opts)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var n int
	switch *format {
	case "bin":
		tw := essio.NewTraceWriter(w)
		n, err = copyMax(tw, g, *max)
		if err == nil {
			err = tw.Flush()
		}
	case "text":
		tw := essio.NewTraceTextWriter(w)
		n, err = copyMax(tw, g, *max)
		if err == nil {
			err = tw.Flush()
		}
	case "col":
		tw := essio.NewTraceColWriter(w)
		n, err = copyMax(tw, g, *max)
		if err == nil {
			err = tw.Flush()
		}
	default:
		return fmt.Errorf("generate: unknown -format %q (want bin, text, or col)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %d records from %s (seed %d)\n", n, m.Label, *seed)
	return nil
}

// copyMax pumps src into dst, stopping after max records when max > 0.
func copyMax(dst essio.TraceSink, src essio.TraceSource, max int) (int, error) {
	if max <= 0 {
		return essio.CopyTrace(dst, src)
	}
	n := 0
	for n < max {
		r, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		if err := dst.Add(r); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func runValidate(args []string) (err error) {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	a := fs.String("a", "", "reference trace or model JSON (required)")
	b := fs.String("b", "", "candidate trace or model JSON (required)")
	disk := fs.Uint("disk", 1024000, "disk size in sectors (for trace inputs)")
	band := fs.Uint("band", 0, "band width in sectors (0 = 100000)")
	sizeKS := fs.Float64("sizeks", 0, "override size KS tolerance (0 = default)")
	minBandP := fs.Float64("minbandp", 0, "override minimum band p-value (0 = default)")
	startProf := profileFlags(fs)
	fs.Parse(args)
	if *a == "" || *b == "" {
		return fmt.Errorf("validate: -a and -b are required")
	}
	stopProf, err := startProf()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	ma, err := loadModelOrFit(*a, uint32(*disk), uint32(*band))
	if err != nil {
		return err
	}
	mb, err := loadModelOrFit(*b, uint32(*disk), uint32(*band))
	if err != nil {
		return err
	}

	d := essio.ModelDistance(ma, mb)
	fmt.Println(d)
	tol := essio.DefaultModelTolerance()
	if *sizeKS > 0 {
		tol.SizeKS = *sizeKS
	}
	if *minBandP > 0 {
		tol.MinBandP = *minBandP
	}
	return d.Check(tol)
}

// readModel loads a model JSON file.
func readModel(path string) (*essio.WorkloadModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return essio.ReadModelJSON(f)
}

// loadModelOrFit treats .json paths as saved models and anything else as
// a trace file to fit on the fly.
func loadModelOrFit(path string, disk, band uint32) (*essio.WorkloadModel, error) {
	if strings.HasSuffix(path, ".json") {
		return readModel(path)
	}
	src, err := essio.OpenTraceFile(path, "auto")
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return essio.FitModel(path, src, 0, disk, band)
}
