package main

import (
	"flag"
	"fmt"
	"os"

	"essio"
)

// traceMain implements "essmon trace": run an experiment with the
// per-request I/O journal collecting (obs level Trace), export the
// merged journal as Chrome trace-event JSON, and print the analysis
// lenses. With -o "-" the JSON goes to stdout and the tables are
// suppressed; otherwise the JSON lands in the named file and the tables
// print to stdout.
func traceMain(args []string) {
	fs := flag.NewFlagSet("essmon trace", flag.ExitOnError)
	run := fs.String("run", "", "experiment to trace (baseline|ppm|wavelet|nbody|combined)")
	small := fs.Bool("small", false, "scaled-down experiment configuration")
	nodes := fs.Int("nodes", 16, "cluster size")
	seed := fs.Int64("seed", 1, "simulation seed")
	shards := fs.Int("shards", 1, "parallel simulation shards (trace bytes are identical at any count)")
	out := fs.String("o", "-", "trace-event JSON output path (\"-\" writes stdout and suppresses tables)")
	breakdown := fs.Bool("breakdown", true, "print the per-request latency breakdown table")
	critpath := fs.Bool("critpath", true, "print the critical-path table")
	fs.Parse(args)
	if *run == "" {
		fmt.Fprintln(os.Stderr, "essmon trace: need -run <experiment>")
		os.Exit(2)
	}

	var cfg essio.Config
	if *small {
		cfg = essio.SmallConfig(essio.Kind(*run), *nodes)
	} else {
		cfg = essio.Config{Kind: essio.Kind(*run), Nodes: *nodes}
	}
	cfg.Seed = *seed
	cfg.Shards = *shards
	cfg.ObsLevel = essio.ObsTrace
	fmt.Fprintf(os.Stderr, "tracing %s experiment (%d nodes, %d shards)...\n", *run, cfg.Nodes, *shards)
	res, err := essio.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "essmon trace:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "journal: %d events", len(res.IOTrace))
	if res.IOTraceDropped > 0 {
		fmt.Fprintf(os.Stderr, " (%d evicted by ring capacity; journal is a suffix of the run)", res.IOTraceDropped)
	}
	fmt.Fprintln(os.Stderr)

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "essmon trace:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := essio.WriteChromeTrace(w, res.IOTrace); err != nil {
		fmt.Fprintln(os.Stderr, "essmon trace:", err)
		os.Exit(1)
	}
	if *out == "-" {
		return
	}
	fmt.Fprintf(os.Stderr, "wrote %s (load it at https://ui.perfetto.dev)\n", *out)
	if *breakdown {
		fmt.Println("per-request latency breakdown")
		fmt.Print(essio.ComputeIOBreakdown(res.IOTrace).Table())
	}
	if *critpath {
		fmt.Print(essio.ComputeIOCriticalPath(res.IOTrace).Table())
	}
}
