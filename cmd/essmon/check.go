package main

import (
	"fmt"
	"strings"

	"essio"
)

// checkCounters verifies every named counter is present and nonzero, and
// — when an experiment ran inline — that the /proc metrics text parses
// and exposes the same counters (the exposition-path smoke test). On
// failure the error names each offending metric and says what was wrong
// with it: absent from the snapshot, present but zero, or missing from
// the procfs exposition.
func checkCounters(snap *essio.MetricSnapshot, procText string, names []string) error {
	var bad []string
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		switch {
		case !hasCounter(snap, name):
			bad = append(bad, name+" (missing)")
		case snap.Counter(name) == 0:
			bad = append(bad, name+" (zero)")
		}
		// sim/* metrics are synthesized cluster-wide from the engine and
		// never appear in a node's proc file; everything else must.
		if procText != "" && !strings.HasPrefix(name, "sim/") &&
			!strings.Contains(procText, metricSeries(name)+" ") {
			bad = append(bad, name+" (absent from procfs)")
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("counter check failed: %s", strings.Join(bad, ", "))
	}
	return nil
}

// hasCounter reports whether the snapshot contains the named counter at
// all — Snapshot.Counter alone cannot distinguish a missing counter
// from a zero one.
func hasCounter(snap *essio.MetricSnapshot, name string) bool {
	for _, c := range snap.Counters {
		if c.Name == name {
			return true
		}
	}
	return false
}

// metricSeries mirrors the snapshot's Prometheus name mangling.
func metricSeries(name string) string {
	return "essio_" + strings.NewReplacer("/", "_", "-", "_", ".", "_").Replace(name)
}
