// Command essmon renders a metric snapshot of the simulated system: the
// trace pipeline's per-stage record flow, the I/O stack counters and
// gauges, and — at full collection — the latency and seek-distance
// distributions. Snapshots come from a completed experiment run inline or
// from a metrics.json file previously captured (an experiment's
// Result.Obs, or a node's /proc metrics.json entry).
//
// Usage:
//
//	essmon -run baseline -small -nodes 2    # run, then render
//	essmon -run combined -level full        # distributions too
//	essmon -i metrics.json                  # render a saved snapshot
//	essmon -run baseline -small -json       # emit the snapshot as JSON
//	essmon -run baseline -small -check driver/requests,sim/events_fired
//	essmon -run ppm -small -nodes 64 -shards 8 -check sim/events_fired
//	essmon trace -run ppm -small -o ppm.trace.json   # per-request journal
//
// -check exits nonzero unless every named counter is present and nonzero —
// naming each failing metric and what was wrong with it (missing, zero,
// or absent from the procfs exposition) — which is how CI smoke-tests
// the observability path end to end. The trace subcommand runs an
// experiment at the trace collection level and exports the per-request
// I/O journal as Perfetto-loadable Chrome trace JSON plus the
// latency-breakdown and critical-path tables (see cmd/essmon/trace.go).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"essio"
	"essio/internal/asciiplot"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceMain(os.Args[2:])
		return
	}
	input := flag.String("i", "", "render a saved snapshot JSON file (\"-\" reads stdin)")
	run := flag.String("run", "", "run this experiment (baseline|ppm|wavelet|nbody|combined) and render its snapshot")
	small := flag.Bool("small", false, "scaled-down experiment configuration")
	nodes := flag.Int("nodes", 16, "cluster size for -run")
	seed := flag.Int64("seed", 1, "simulation seed for -run")
	shards := flag.Int("shards", 1, "parallel simulation shards for -run (results are identical at any count)")
	level := flag.String("level", "counters", "collection level for -run: off, counters, full, or trace")
	asJSON := flag.Bool("json", false, "emit the snapshot as JSON instead of rendering")
	asText := flag.Bool("text", false, "emit the snapshot in Prometheus text format instead of rendering")
	check := flag.String("check", "", "comma-separated counters that must be nonzero (exit 1 otherwise)")
	flag.Parse()

	var snap *essio.MetricSnapshot
	var procText string
	switch {
	case *input != "" && *run != "":
		fmt.Fprintln(os.Stderr, "essmon: -i and -run are mutually exclusive")
		os.Exit(2)
	case *input != "":
		var err error
		snap, err = readSnapshot(*input)
		if err != nil {
			fmt.Fprintln(os.Stderr, "essmon:", err)
			os.Exit(1)
		}
	case *run != "":
		lv := essio.ParseObsLevel(*level)
		var cfg essio.Config
		if *small {
			cfg = essio.SmallConfig(essio.Kind(*run), *nodes)
		} else {
			cfg = essio.Config{Kind: essio.Kind(*run), Nodes: *nodes}
		}
		cfg.Seed = *seed
		cfg.Shards = *shards
		cfg.ObsLevel = lv
		fmt.Fprintf(os.Stderr, "running %s experiment (%d nodes, %d shards, %s collection)...\n",
			*run, cfg.Nodes, *shards, lv)
		res, err := essio.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "essmon:", err)
			os.Exit(1)
		}
		snap = res.Obs
		procText = res.ProcMetrics
	default:
		fmt.Fprintln(os.Stderr, "essmon: need -i snapshot.json or -run <experiment>")
		os.Exit(2)
	}

	if *check != "" {
		if err := checkCounters(snap, procText, strings.Split(*check, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "essmon:", err)
			os.Exit(1)
		}
		fmt.Println("ok")
		return
	}
	switch {
	case *asJSON:
		b, err := snap.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "essmon:", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
	case *asText:
		fmt.Print(snap.Text())
	default:
		fmt.Print(render(snap))
	}
}

// readSnapshot loads a snapshot JSON document from a file or stdin.
func readSnapshot(path string) (*essio.MetricSnapshot, error) {
	if path == "-" {
		return essio.ParseMetricJSON(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return essio.ParseMetricJSON(f)
}

// render draws the snapshot: pipeline flow as bars, then the counter,
// gauge, and histogram listings.
func render(s *essio.MetricSnapshot) string {
	var b strings.Builder
	if flow := pipelineFlow(s); flow != "" {
		b.WriteString(flow)
		b.WriteString("\n")
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters\n")
		w := 0
		for _, c := range s.Counters {
			if len(c.Name) > w {
				w = len(c.Name)
			}
		}
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "  %-*s %12d\n", w, c.Name, c.Value)
		}
		b.WriteString("\n")
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges (value / high-water)\n")
		w := 0
		for _, g := range s.Gauges {
			if len(g.Name) > w {
				w = len(g.Name)
			}
		}
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "  %-*s %12d / %d\n", w, g.Name, g.Value, g.Max)
		}
		b.WriteString("\n")
	}
	for _, h := range s.Hists {
		if h.Count == 0 {
			continue
		}
		labels := make([]string, 0, len(h.Buckets))
		values := make([]float64, 0, len(h.Buckets))
		for i, n := range h.Buckets {
			lbl := "+Inf"
			if i < len(h.Bounds) {
				lbl = fmt.Sprintf("<=%d", h.Bounds[i])
			}
			labels = append(labels, lbl)
			values = append(values, 100*float64(n)/float64(h.Count))
		}
		fmt.Fprintf(&b, "%s", asciiplot.Bars(
			fmt.Sprintf("%s (n=%d, sum=%d)", h.Name, h.Count, h.Sum),
			labels, values, 40))
		b.WriteString("\n")
	}
	return b.String()
}

// pipelineFlow renders the per-stage record flow (pipeline/<stage>/records
// counters) as bars scaled to the busiest stage, ordered by flow volume so
// the source-to-sink taper reads top down.
func pipelineFlow(s *essio.MetricSnapshot) string {
	type stage struct {
		name    string
		records uint64
	}
	var stages []stage
	for _, c := range s.Counters {
		rest, ok := strings.CutPrefix(c.Name, "pipeline/")
		if !ok {
			continue
		}
		name, ok := strings.CutSuffix(rest, "/records")
		if !ok {
			continue
		}
		stages = append(stages, stage{name, c.Value})
	}
	if len(stages) == 0 {
		return ""
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].records != stages[j].records {
			return stages[i].records > stages[j].records
		}
		return stages[i].name < stages[j].name
	})
	var peak uint64 = 1
	if stages[0].records > 0 {
		peak = stages[0].records
	}
	labels := make([]string, len(stages))
	values := make([]float64, len(stages))
	for i, st := range stages {
		labels[i] = fmt.Sprintf("%s (%d rec)", st.name, st.records)
		values[i] = 100 * float64(st.records) / float64(peak)
	}
	return asciiplot.Bars("pipeline flow (records, % of busiest stage)", labels, values, 40)
}
