package main

import (
	"strings"
	"testing"

	"essio"
)

// checkSnap builds a snapshot with one nonzero counter, one zero
// counter, and nothing else.
func checkSnap() *essio.MetricSnapshot {
	reg := essio.NewObsRegistry(essio.ObsCounters)
	reg.Counter("driver/requests").Add(7)
	reg.Counter("bcache/hits") // registered but never incremented
	return reg.Snapshot()
}

func TestCheckCountersPasses(t *testing.T) {
	if err := checkCounters(checkSnap(), "", []string{"driver/requests", " ", ""}); err != nil {
		t.Fatalf("check failed on a healthy snapshot: %v", err)
	}
}

func TestCheckCountersNamesEachFailure(t *testing.T) {
	err := checkCounters(checkSnap(), "", []string{"driver/requests", "bcache/hits", "driver/nope"})
	if err == nil {
		t.Fatalf("check passed with a zero and a missing counter")
	}
	msg := err.Error()
	for _, want := range []string{"bcache/hits (zero)", "driver/nope (missing)"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not name %q", msg, want)
		}
	}
	if strings.Contains(msg, "driver/requests") {
		t.Errorf("error %q blames the healthy counter", msg)
	}
}

func TestCheckCountersProcfsExposition(t *testing.T) {
	// The procfs text exposes driver/requests but not bcache/hits; the
	// sim/* namespace is engine-synthesized and exempt.
	proc := "essio_driver_requests 7\n"
	snap := checkSnap()
	if err := checkCounters(snap, proc, []string{"driver/requests"}); err != nil {
		t.Fatalf("check failed on an exposed counter: %v", err)
	}
	reg := essio.NewObsRegistry(essio.ObsCounters)
	reg.Counter("bcache/hits").Add(3)
	reg.Counter("sim/events_fired").Add(9)
	snap = reg.Snapshot()
	err := checkCounters(snap, proc, []string{"bcache/hits"})
	if err == nil || !strings.Contains(err.Error(), "bcache/hits (absent from procfs)") {
		t.Fatalf("procfs absence not reported: %v", err)
	}
	if err := checkCounters(snap, proc, []string{"sim/events_fired"}); err != nil {
		t.Fatalf("sim/* counter wrongly required in procfs: %v", err)
	}
}
