// Command esstrace runs one of the study's experiments on the simulated
// Beowulf cluster and writes the captured device-driver trace.
//
// Usage:
//
//	esstrace -kind wavelet -nodes 16 -o wavelet.trc
//	esstrace -kind baseline -text            # human-readable dump to stdout
//	esstrace -kind combined -small           # scaled-down quick run
package main

import (
	"flag"
	"fmt"
	"os"

	"essio"
)

func main() {
	kind := flag.String("kind", "baseline", "experiment: baseline|ppm|wavelet|nbody|combined")
	nodes := flag.Int("nodes", 16, "cluster size")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("o", "", "output trace file (binary format); empty writes no file")
	outText := flag.String("otext", "", "output trace file in tab-separated text format")
	outCol := flag.String("ocol", "", "output trace file in compressed columnar format")
	text := flag.Bool("text", false, "dump records as text to stdout")
	small := flag.Bool("small", false, "scaled-down configuration (quick)")
	flag.Parse()

	var cfg essio.Config
	if *small {
		cfg = essio.SmallConfig(essio.Kind(*kind), *nodes)
	} else {
		cfg = essio.Config{Kind: essio.Kind(*kind), Nodes: *nodes}
	}
	cfg.Seed = *seed

	res, err := essio.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esstrace:", err)
		os.Exit(1)
	}
	s := essio.Summarize(*kind, res.Merged, res.Duration, res.Nodes)
	fmt.Println(s)

	// Trace files are written by streaming the k-way per-node merge
	// through an incremental encoder — no second merged copy in memory.
	if *out != "" {
		n, err := writeStream(*out, res, func(f *os.File) flushSink {
			return essio.NewTraceWriter(f)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", n, *out)
	}
	if *outText != "" {
		n, err := writeStream(*outText, res, func(f *os.File) flushSink {
			return essio.NewTraceTextWriter(f)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s (text)\n", n, *outText)
	}
	if *outCol != "" {
		n, err := writeStream(*outCol, res, func(f *os.File) flushSink {
			return essio.NewTraceColWriter(f)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s (col)\n", n, *outCol)
	}
	if *text {
		for _, r := range res.Merged {
			fmt.Println(r)
		}
	}
}

// flushSink is a streaming encoder: a record sink with a final flush.
type flushSink interface {
	essio.TraceSink
	Flush() error
}

// writeStream creates path and pumps the result's streaming trace view
// through the encoder mk builds over the file.
func writeStream(path string, res *essio.Result, mk func(*os.File) flushSink) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sink := mk(f)
	n, err := essio.CopyTrace(sink, res.Source())
	if err != nil {
		return n, err
	}
	if err := sink.Flush(); err != nil {
		return n, err
	}
	return n, f.Close()
}
