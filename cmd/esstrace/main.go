// Command esstrace runs one of the study's experiments on the simulated
// Beowulf cluster and writes the captured device-driver trace.
//
// Usage:
//
//	esstrace -kind wavelet -nodes 16 -o wavelet.trc
//	esstrace -kind baseline -text            # human-readable dump to stdout
//	esstrace -kind combined -small           # scaled-down quick run
package main

import (
	"flag"
	"fmt"
	"os"

	"essio"
)

func main() {
	kind := flag.String("kind", "baseline", "experiment: baseline|ppm|wavelet|nbody|combined")
	nodes := flag.Int("nodes", 16, "cluster size")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("o", "", "output trace file (binary format); empty writes no file")
	outText := flag.String("otext", "", "output trace file in tab-separated text format")
	text := flag.Bool("text", false, "dump records as text to stdout")
	small := flag.Bool("small", false, "scaled-down configuration (quick)")
	flag.Parse()

	var cfg essio.Config
	if *small {
		cfg = essio.SmallConfig(essio.Kind(*kind), *nodes)
	} else {
		cfg = essio.Config{Kind: essio.Kind(*kind), Nodes: *nodes}
	}
	cfg.Seed = *seed

	res, err := essio.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "esstrace:", err)
		os.Exit(1)
	}
	s := essio.Summarize(*kind, res.Merged, res.Duration, res.Nodes)
	fmt.Println(s)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		if err := essio.WriteTrace(f, res.Merged); err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", len(res.Merged), *out)
	}
	if *outText != "" {
		f, err := os.Create(*outText)
		if err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		if err := essio.WriteTraceText(f, res.Merged); err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "esstrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s (text)\n", len(res.Merged), *outText)
	}
	if *text {
		for _, r := range res.Merged {
			fmt.Println(r)
		}
	}
}
