// Command essd runs the trace service daemon: live trace ingestion
// with streamed characterization, content-addressed model fitting, and
// admission-controlled experiment multiplexing, over HTTP/JSON.
//
//	essd -addr :9406 -workers 4 -queue 32 -ingest 64 -timeout 30s
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops taking
// connections, in-flight uploads and queued experiment runs finish,
// then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"essio/internal/essd"
	"essio/internal/obs"
)

func main() {
	addr := flag.String("addr", ":9406", "listen address")
	workers := flag.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 16, "experiment queue depth (full queue answers 429)")
	ingest := flag.Int("ingest", 64, "max concurrent uploads (0 = unlimited)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-upload processing timeout (0 = none)")
	retry := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	stored := flag.Int("stored", 64, "max retained ingested traces")
	obsLevel := flag.String("obs", "full", "daemon metric level: off, counters, full")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown budget")
	flag.Parse()

	lvl := obs.ParseLevel(*obsLevel)
	if lvl == obs.Unset && *obsLevel != "" {
		fmt.Fprintf(os.Stderr, "essd: unknown -obs level %q\n", *obsLevel)
		os.Exit(2)
	}
	srv := essd.NewServer(essd.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxIngest:       *ingest,
		RequestTimeout:  *timeout,
		RetryAfter:      *retry,
		MaxStoredTraces: *stored,
		ObsLevel:        lvl,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("essd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("essd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("essd draining (budget %s)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Printf("essd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		log.Printf("essd: drain: %v", err)
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("essd: %v", err)
	}
	log.Printf("essd stopped")
}
