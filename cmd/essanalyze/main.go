// Command essanalyze computes the study's characterization metrics from a
// binary trace file written by esstrace.
//
// Usage:
//
//	essanalyze -i wavelet.trc -nodes 16               # Table 1 row
//	essanalyze -i combined.trc -spatial -temporal      # locality reports
//	essanalyze -i ppm.trc -hist                        # request size histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"essio"
)

func main() {
	in := flag.String("i", "", "input trace file (required)")
	nodes := flag.Int("nodes", 16, "number of disks the trace covers")
	label := flag.String("label", "trace", "row label")
	hist := flag.Bool("hist", false, "print request-size histogram")
	spatial := flag.Bool("spatial", false, "print spatial locality bands")
	temporal := flag.Bool("temporal", false, "print hottest sectors")
	origins := flag.Bool("origins", false, "print ground-truth origin breakdown")
	queue := flag.Bool("queue", false, "print driver queue-depth statistics")
	format := flag.String("format", "bin", "input format: bin or text")
	diskSectors := flag.Uint("disk", 1024000, "disk size in sectors")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "essanalyze: -i is required")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", err)
		os.Exit(1)
	}
	var recs []essio.Record
	if *format == "text" {
		recs, err = essio.ReadTraceText(f)
	} else {
		recs, err = essio.ReadTrace(f)
	}
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return
	}
	duration := recs[len(recs)-1].Time - recs[0].Time
	s := essio.Summarize(*label, recs, essio.Duration(duration), *nodes)
	fmt.Println(s)

	if *hist {
		h := essio.SizeHistogram(recs)
		sizes := make([]int, 0, len(h))
		for kb := range h {
			sizes = append(sizes, kb)
		}
		sort.Ints(sizes)
		fmt.Println("request sizes:")
		for _, kb := range sizes {
			fmt.Printf("  %3d KB: %6d\n", kb, h[kb])
		}
	}
	if *spatial {
		bands := essio.SpatialBands(recs, 100000, uint32(*diskSectors))
		fmt.Println("spatial locality (100K-sector bands):")
		for _, b := range bands {
			if b.Count > 0 {
				fmt.Printf("  %7d-%7d: %6d (%5.1f%%)\n", b.Lo, b.Hi, b.Count, b.Pct)
			}
		}
		fmt.Printf("  80%% of requests in %.0f%% of bands\n", 100*essio.Pareto(bands, 0.8))
	}
	if *temporal {
		heat := essio.TemporalHeat(recs, essio.Duration(duration))
		fmt.Println("hottest sectors:")
		for _, h := range essio.Hottest(heat, 10) {
			fmt.Printf("  sector %7d: %6d accesses (%.3f/s)\n", h.Sector, h.Count, h.PerSec)
		}
		mean, sectors := essio.InterAccess(recs)
		fmt.Printf("  mean inter-access time %.2fs over %d revisited sectors\n", mean.Seconds(), sectors)
	}
	if *queue {
		q := essio.PendingStats(recs)
		fmt.Printf("driver queue: mean depth %.2f, max %d, busy on %.0f%% of issues\n",
			q.MeanPending, q.MaxPending, 100*q.BusyFrac)
	}
	if *origins {
		fmt.Println("origins:")
		counts := map[essio.Origin]int{}
		for _, r := range recs {
			counts[r.Origin]++
		}
		keys := make([]int, 0, len(counts))
		for o := range counts {
			keys = append(keys, int(o))
		}
		sort.Ints(keys)
		for _, o := range keys {
			fmt.Printf("  %-8s %6d\n", essio.Origin(o), counts[essio.Origin(o)])
		}
	}
}
