// Command essanalyze computes the study's characterization metrics from a
// binary trace file written by esstrace. The file is decoded incrementally
// and every requested metric is an accumulator fed from the same single
// pass, so traces of any length are processed in bounded memory. With
// -workers the file is split into record-aligned chunks analyzed
// concurrently and the per-chunk accumulators are folded back together
// with their exact Merge methods, so the output is identical to the
// sequential pass. `-i -` reads the trace from stdin, so the command
// composes in pipelines (and mirrors what the essd daemon serves).
//
// Usage:
//
//	essanalyze -i wavelet.trc -nodes 16               # Table 1 row
//	essanalyze -i combined.trc -spatial -temporal      # locality reports
//	essanalyze -i ppm.trc -hist                        # request size histogram
//	essanalyze -i combined.trc -workers 8 -spatial     # multi-core pass
//	esssynth generate ... -o - | essanalyze -i -       # stdin pipeline
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"essio"
	"essio/internal/characterize"
	"essio/internal/profiling"
	"essio/internal/trace"
)

// analyzeSequential streams the whole input through one accumulator
// set; path "-" reads stdin.
func analyzeSequential(path, format string, o characterize.Options) (*characterize.Set, int, error) {
	var src essio.TraceSource
	if path == "-" {
		rs, err := trace.NewReaderSource(os.Stdin, format)
		if err != nil {
			return nil, 0, err
		}
		src = rs
	} else {
		fs, err := essio.OpenTraceFile(path, format)
		if err != nil {
			return nil, 0, err
		}
		defer fs.Close()
		src = fs
	}
	s := characterize.New(o)
	n, err := essio.CopyTrace(s.Sink(), src)
	return s, n, err
}

// analyzeChunked splits the file into record-aligned chunks, analyzes
// them concurrently, and folds the per-chunk accumulators in file order.
func analyzeChunked(path string, o characterize.Options, workers int) (*characterize.Set, int, error) {
	chunks, err := essio.OpenTraceFileChunks(path, workers)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		for _, c := range chunks {
			c.Close()
		}
	}()
	sets := make([]*characterize.Set, len(chunks))
	counts := make([]int, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		sets[i] = characterize.New(o)
		wg.Add(1)
		go func(i int, c *essio.TraceFileSource) {
			defer wg.Done()
			counts[i], errs[i] = essio.CopyTrace(sets[i].Sink(), c)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	total := 0
	for i := 1; i < len(sets); i++ {
		sets[0].Merge(sets[i])
	}
	for _, n := range counts {
		total += n
	}
	return sets[0], total, nil
}

func main() {
	in := flag.String("i", "", "input trace file (required; - reads stdin)")
	nodes := flag.Int("nodes", 16, "number of disks the trace covers")
	label := flag.String("label", "trace", "row label")
	hist := flag.Bool("hist", false, "print request-size histogram")
	spatial := flag.Bool("spatial", false, "print spatial locality bands")
	temporal := flag.Bool("temporal", false, "print hottest sectors")
	origins := flag.Bool("origins", false, "print ground-truth origin breakdown")
	queue := flag.Bool("queue", false, "print driver queue-depth statistics")
	format := flag.String("format", "auto", "input format: auto, bin, text, or col")
	diskSectors := flag.Uint("disk", 1024000, "disk size in sectors")
	workers := flag.Int("workers", 1, "analyze the file in N concurrent chunks (0 = all cores)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "essanalyze: -i is required")
		os.Exit(2)
	}
	stopProf, perr := profiling.Start(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", perr)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "essanalyze:", err)
		}
	}()
	o := characterize.Options{
		Label:       *label,
		Nodes:       *nodes,
		Hist:        *hist,
		Spatial:     *spatial,
		Temporal:    *temporal,
		Queue:       *queue,
		Origins:     *origins,
		DiskSectors: uint32(*diskSectors),
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	var (
		s   *characterize.Set
		n   int
		err error
	)
	if w > 1 && *in != "-" {
		s, n, err = analyzeChunked(*in, o, w)
		if err != nil {
			// Text and columnar traces and odd-sized files cannot be
			// chunked; the sequential pass handles them (for columnar
			// files it is the mmap-backed columnar fast path).
			fmt.Fprintf(os.Stderr, "essanalyze: %v; falling back to one worker\n", err)
			s, n, err = analyzeSequential(*in, *format, o)
		}
	} else {
		s, n, err = analyzeSequential(*in, *format, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", err)
		_ = stopProf()
		os.Exit(1)
	}
	fmt.Print(s.Report(n))
}
