// Command essanalyze computes the study's characterization metrics from a
// binary trace file written by esstrace. The file is decoded incrementally
// and every requested metric is an accumulator fed from the same single
// pass, so traces of any length are processed in bounded memory.
//
// Usage:
//
//	essanalyze -i wavelet.trc -nodes 16               # Table 1 row
//	essanalyze -i combined.trc -spatial -temporal      # locality reports
//	essanalyze -i ppm.trc -hist                        # request size histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"essio"
)

func main() {
	in := flag.String("i", "", "input trace file (required)")
	nodes := flag.Int("nodes", 16, "number of disks the trace covers")
	label := flag.String("label", "trace", "row label")
	hist := flag.Bool("hist", false, "print request-size histogram")
	spatial := flag.Bool("spatial", false, "print spatial locality bands")
	temporal := flag.Bool("temporal", false, "print hottest sectors")
	origins := flag.Bool("origins", false, "print ground-truth origin breakdown")
	queue := flag.Bool("queue", false, "print driver queue-depth statistics")
	format := flag.String("format", "auto", "input format: auto, bin, or text")
	diskSectors := flag.Uint("disk", 1024000, "disk size in sectors")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "essanalyze: -i is required")
		os.Exit(2)
	}
	src, err := essio.OpenTraceFile(*in, *format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", err)
		os.Exit(2)
	}
	defer src.Close()

	// One streaming pass feeds every requested accumulator at once; the
	// trace is never resident in memory.
	sum := essio.NewSummaryAcc(*label, 0, *nodes)
	sinks := []essio.TraceSink{sum}
	var histAcc *essio.SizeHistAcc
	if *hist {
		histAcc = essio.NewSizeHistAcc()
		sinks = append(sinks, histAcc)
	}
	var bandsAcc *essio.BandsAcc
	if *spatial {
		bandsAcc = essio.NewBandsAcc(100000, uint32(*diskSectors))
		sinks = append(sinks, bandsAcc)
	}
	var heatAcc *essio.HeatAcc
	var interAcc *essio.InterAccessAcc
	if *temporal {
		heatAcc = essio.NewHeatAcc()
		interAcc = essio.NewInterAccessAcc()
		sinks = append(sinks, heatAcc, interAcc)
	}
	var pendAcc *essio.PendingAcc
	if *queue {
		pendAcc = essio.NewPendingAcc()
		sinks = append(sinks, pendAcc)
	}
	var origAcc *essio.OriginAcc
	if *origins {
		origAcc = essio.NewOriginAcc()
		sinks = append(sinks, origAcc)
	}

	n, err := essio.CopyTrace(essio.TeeSinks(sinks...), src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", err)
		os.Exit(1)
	}
	if n == 0 {
		fmt.Println("empty trace")
		return
	}
	duration := sum.Span()
	sum.SetDuration(duration)
	fmt.Println(sum.Summary())

	if *hist {
		h := histAcc.Histogram()
		sizes := make([]int, 0, len(h))
		for kb := range h {
			sizes = append(sizes, kb)
		}
		sort.Ints(sizes)
		fmt.Println("request sizes:")
		for _, kb := range sizes {
			fmt.Printf("  %3d KB: %6d\n", kb, h[kb])
		}
	}
	if *spatial {
		bands := bandsAcc.Bands()
		fmt.Println("spatial locality (100K-sector bands):")
		for _, b := range bands {
			if b.Count > 0 {
				fmt.Printf("  %7d-%7d: %6d (%5.1f%%)\n", b.Lo, b.Hi, b.Count, b.Pct)
			}
		}
		fmt.Printf("  80%% of requests in %.0f%% of bands\n", 100*essio.Pareto(bands, 0.8))
	}
	if *temporal {
		heat := heatAcc.Heat(duration)
		fmt.Println("hottest sectors:")
		for _, h := range essio.Hottest(heat, 10) {
			fmt.Printf("  sector %7d: %6d accesses (%.3f/s)\n", h.Sector, h.Count, h.PerSec)
		}
		mean, sectors := interAcc.Result()
		fmt.Printf("  mean inter-access time %.2fs over %d revisited sectors\n", mean.Seconds(), sectors)
	}
	if *queue {
		q := pendAcc.Stats()
		fmt.Printf("driver queue: mean depth %.2f, max %d, busy on %.0f%% of issues\n",
			q.MeanPending, q.MaxPending, 100*q.BusyFrac)
	}
	if *origins {
		fmt.Println("origins:")
		counts := origAcc.Breakdown()
		keys := make([]int, 0, len(counts))
		for o := range counts {
			keys = append(keys, int(o))
		}
		sort.Ints(keys)
		for _, o := range keys {
			fmt.Printf("  %-8s %6d\n", essio.Origin(o), counts[essio.Origin(o)])
		}
	}
}
