// Command essanalyze computes the study's characterization metrics from a
// binary trace file written by esstrace. The file is decoded incrementally
// and every requested metric is an accumulator fed from the same single
// pass, so traces of any length are processed in bounded memory. With
// -workers the file is split into record-aligned chunks analyzed
// concurrently and the per-chunk accumulators are folded back together
// with their exact Merge methods, so the output is identical to the
// sequential pass.
//
// Usage:
//
//	essanalyze -i wavelet.trc -nodes 16               # Table 1 row
//	essanalyze -i combined.trc -spatial -temporal      # locality reports
//	essanalyze -i ppm.trc -hist                        # request size histogram
//	essanalyze -i combined.trc -workers 8 -spatial     # multi-core pass
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"essio"
	"essio/internal/profiling"
)

// accSet is one worker's set of requested accumulators.
type accSet struct {
	sum   *essio.SummaryAcc
	hist  *essio.SizeHistAcc
	bands *essio.BandsAcc
	heat  *essio.HeatAcc
	inter *essio.InterAccessAcc
	pend  *essio.PendingAcc
	orig  *essio.OriginAcc
}

// options selects which metrics to compute.
type options struct {
	label       string
	nodes       int
	hist        bool
	spatial     bool
	temporal    bool
	queue       bool
	origins     bool
	diskSectors uint32
}

func newAccSet(o options) *accSet {
	s := &accSet{sum: essio.NewSummaryAcc(o.label, 0, o.nodes)}
	if o.hist {
		s.hist = essio.NewSizeHistAcc()
	}
	if o.spatial {
		s.bands = essio.NewBandsAcc(100000, o.diskSectors)
	}
	if o.temporal {
		s.heat = essio.NewHeatAcc()
		s.inter = essio.NewInterAccessAcc()
	}
	if o.queue {
		s.pend = essio.NewPendingAcc()
	}
	if o.origins {
		s.orig = essio.NewOriginAcc()
	}
	return s
}

func (s *accSet) sinks() []essio.TraceSink {
	out := []essio.TraceSink{s.sum}
	if s.hist != nil {
		out = append(out, s.hist)
	}
	if s.bands != nil {
		out = append(out, s.bands)
	}
	if s.heat != nil {
		out = append(out, s.heat, s.inter)
	}
	if s.pend != nil {
		out = append(out, s.pend)
	}
	if s.orig != nil {
		out = append(out, s.orig)
	}
	return out
}

// merge folds b, which consumed the records immediately following s's,
// into s. Every fold is the accumulator's exact Merge, so the combined
// set matches a sequential pass over the whole file.
func (s *accSet) merge(b *accSet) {
	s.sum.Merge(b.sum)
	if s.hist != nil {
		s.hist.Merge(b.hist)
	}
	if s.bands != nil {
		s.bands.Merge(b.bands)
	}
	if s.heat != nil {
		s.heat.Merge(b.heat)
		s.inter.Merge(b.inter)
	}
	if s.pend != nil {
		s.pend.Merge(b.pend)
	}
	if s.orig != nil {
		s.orig.Merge(b.orig)
	}
}

// analyzeSequential streams the whole file through one accumulator set.
func analyzeSequential(path, format string, o options) (*accSet, int, error) {
	src, err := essio.OpenTraceFile(path, format)
	if err != nil {
		return nil, 0, err
	}
	defer src.Close()
	s := newAccSet(o)
	n, err := essio.CopyTrace(essio.TeeSinks(s.sinks()...), src)
	return s, n, err
}

// analyzeChunked splits the file into record-aligned chunks, analyzes
// them concurrently, and folds the per-chunk accumulators in file order.
func analyzeChunked(path string, o options, workers int) (*accSet, int, error) {
	chunks, err := essio.OpenTraceFileChunks(path, workers)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		for _, c := range chunks {
			c.Close()
		}
	}()
	sets := make([]*accSet, len(chunks))
	counts := make([]int, len(chunks))
	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		sets[i] = newAccSet(o)
		wg.Add(1)
		go func(i int, c *essio.TraceFileSource) {
			defer wg.Done()
			counts[i], errs[i] = essio.CopyTrace(essio.TeeSinks(sets[i].sinks()...), c)
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, 0, err
		}
	}
	total := 0
	for i := 1; i < len(sets); i++ {
		sets[0].merge(sets[i])
	}
	for _, n := range counts {
		total += n
	}
	return sets[0], total, nil
}

func main() {
	in := flag.String("i", "", "input trace file (required)")
	nodes := flag.Int("nodes", 16, "number of disks the trace covers")
	label := flag.String("label", "trace", "row label")
	hist := flag.Bool("hist", false, "print request-size histogram")
	spatial := flag.Bool("spatial", false, "print spatial locality bands")
	temporal := flag.Bool("temporal", false, "print hottest sectors")
	origins := flag.Bool("origins", false, "print ground-truth origin breakdown")
	queue := flag.Bool("queue", false, "print driver queue-depth statistics")
	format := flag.String("format", "auto", "input format: auto, bin, or text")
	diskSectors := flag.Uint("disk", 1024000, "disk size in sectors")
	workers := flag.Int("workers", 1, "analyze the file in N concurrent chunks (0 = all cores)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "essanalyze: -i is required")
		os.Exit(2)
	}
	stopProf, perr := profiling.Start(*cpuprofile, *memprofile)
	if perr != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", perr)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "essanalyze:", err)
		}
	}()
	o := options{
		label:       *label,
		nodes:       *nodes,
		hist:        *hist,
		spatial:     *spatial,
		temporal:    *temporal,
		queue:       *queue,
		origins:     *origins,
		diskSectors: uint32(*diskSectors),
	}
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}

	var (
		s   *accSet
		n   int
		err error
	)
	if w > 1 {
		s, n, err = analyzeChunked(*in, o, w)
		if err != nil {
			// Text traces and odd-sized files cannot be chunked; the
			// sequential pass handles them.
			fmt.Fprintf(os.Stderr, "essanalyze: %v; falling back to one worker\n", err)
			s, n, err = analyzeSequential(*in, *format, o)
		}
	} else {
		s, n, err = analyzeSequential(*in, *format, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "essanalyze:", err)
		_ = stopProf()
		os.Exit(1)
	}
	if n == 0 {
		fmt.Println("empty trace")
		return
	}
	duration := s.sum.Span()
	s.sum.SetDuration(duration)
	fmt.Println(s.sum.Summary())

	if *hist {
		h := s.hist.Histogram()
		sizes := make([]int, 0, len(h))
		for kb := range h {
			sizes = append(sizes, kb)
		}
		sort.Ints(sizes)
		fmt.Println("request sizes:")
		for _, kb := range sizes {
			fmt.Printf("  %3d KB: %6d\n", kb, h[kb])
		}
	}
	if *spatial {
		bands := s.bands.Bands()
		fmt.Println("spatial locality (100K-sector bands):")
		for _, b := range bands {
			if b.Count > 0 {
				fmt.Printf("  %7d-%7d: %6d (%5.1f%%)\n", b.Lo, b.Hi, b.Count, b.Pct)
			}
		}
		fmt.Printf("  80%% of requests in %.0f%% of bands\n", 100*essio.Pareto(bands, 0.8))
	}
	if *temporal {
		heat := s.heat.Heat(duration)
		fmt.Println("hottest sectors:")
		for _, h := range essio.Hottest(heat, 10) {
			fmt.Printf("  sector %7d: %6d accesses (%.3f/s)\n", h.Sector, h.Count, h.PerSec)
		}
		mean, sectors := s.inter.Result()
		fmt.Printf("  mean inter-access time %.2fs over %d revisited sectors\n", mean.Seconds(), sectors)
	}
	if *queue {
		q := s.pend.Stats()
		fmt.Printf("driver queue: mean depth %.2f, max %d, busy on %.0f%% of issues\n",
			q.MeanPending, q.MaxPending, 100*q.BusyFrac)
	}
	if *origins {
		fmt.Println("origins:")
		counts := s.orig.Breakdown()
		keys := make([]int, 0, len(counts))
		for o := range counts {
			keys = append(keys, int(o))
		}
		sort.Ints(keys)
		for _, o := range keys {
			fmt.Printf("  %-8s %6d\n", essio.Origin(o), counts[essio.Origin(o)])
		}
	}
}
