// Command essreport regenerates the paper's full evaluation: it runs all
// five experiments (baseline, the three applications alone, and the
// combined production mix) and renders Table 1 and Figures 1–8 with
// paper-vs-measured commentary.
//
// Usage:
//
//	essreport                 # full 16-node reproduction (minutes)
//	essreport -small          # scaled-down quick pass
//	essreport -fig 3          # only the experiment behind Figure 3
//	essreport -table1         # only Table 1
//	essreport -trace          # + per-request latency breakdown & critical path
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"essio"
	"essio/internal/profiling"
)

// stopProfile flushes the pprof collectors; exit paths call it so the
// CPU profile is valid even on failure.
var stopProfile = func() error { return nil }

// fail prints the error, flushes profiles, and exits.
func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "essreport:", err)
	_ = stopProfile()
	os.Exit(code)
}

// dumpTrace writes res's merged trace under dir in the requested wire
// format, streaming the k-way per-node merge straight into the encoder.
func dumpTrace(dir, format string, kind essio.Kind, res *essio.Result) (string, int, error) {
	type flushSink interface {
		essio.TraceSink
		Flush() error
	}
	var (
		ext string
		mk  func(f *os.File) flushSink
	)
	switch format {
	case "bin":
		ext = ".trc"
		mk = func(f *os.File) flushSink { return essio.NewTraceWriter(f) }
	case "text":
		ext = ".txt"
		mk = func(f *os.File) flushSink { return essio.NewTraceTextWriter(f) }
	case "col":
		ext = ".col"
		mk = func(f *os.File) flushSink { return essio.NewTraceColWriter(f) }
	default:
		return "", 0, fmt.Errorf("unknown -format %q (want bin, text, or col)", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, err
	}
	path := filepath.Join(dir, string(kind)+ext)
	f, err := os.Create(path)
	if err != nil {
		return path, 0, err
	}
	defer f.Close()
	sink := mk(f)
	n, err := essio.CopyTrace(sink, res.Source())
	if err != nil {
		return path, n, err
	}
	if err := sink.Flush(); err != nil {
		return path, n, err
	}
	return path, n, f.Close()
}

func runOne(kind essio.Kind, nodes int, seed int64, small bool) (*essio.Result, error) {
	var cfg essio.Config
	if small {
		cfg = essio.SmallConfig(kind, nodes)
	} else {
		cfg = essio.Config{Kind: kind, Nodes: nodes}
	}
	cfg.Seed = seed
	fmt.Fprintf(os.Stderr, "running %s experiment (%d nodes)...\n", kind, cfg.Nodes)
	return essio.Run(cfg)
}

func main() {
	nodes := flag.Int("nodes", 16, "cluster size")
	seed := flag.Int64("seed", 1, "simulation seed")
	small := flag.Bool("small", false, "scaled-down configuration")
	fig := flag.Int("fig", 0, "render only this figure (1-8)")
	table1 := flag.Bool("table1", false, "render only Table 1")
	seeds := flag.Int("seeds", 1, "repeat each experiment across N seeds and report mean±stddev")
	svgDir := flag.String("svg", "", "also write Figures 1-8 as SVG files into this directory")
	dumpDir := flag.String("dump", "", "also write each experiment's merged trace into this directory")
	format := flag.String("format", "bin", "trace format for -dump: bin, text, or col")
	workers := flag.Int("workers", 0, "worker pool size for experiment runs and characterization (0 = all cores)")
	withTrace := flag.Bool("trace", false, "collect per-request I/O journals (obs level trace) and print latency-breakdown and critical-path tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fail(1, err)
	}
	stopProfile = stop
	defer func() {
		if err := stopProfile(); err != nil {
			fmt.Fprintln(os.Stderr, "essreport:", err)
		}
	}()

	if *seeds > 1 {
		list := make([]int64, *seeds)
		for i := range list {
			list[i] = *seed + int64(i)
		}
		for _, k := range essio.Kinds {
			var cfg essio.Config
			if *small {
				cfg = essio.SmallConfig(k, *nodes)
			} else {
				cfg = essio.Config{Kind: k, Nodes: *nodes}
			}
			rep, err := essio.RunSeeds(cfg, list)
			if err != nil {
				fail(1, err)
			}
			fmt.Println(rep)
		}
		return
	}

	if *fig != 0 {
		kind, err := essio.KindForFigure(*fig)
		if err != nil {
			fail(2, err)
		}
		res, err := runOne(kind, *nodes, *seed, *small)
		if err != nil {
			fail(1, err)
		}
		out, err := essio.Figure(*fig, res)
		if err != nil {
			fail(1, err)
		}
		fmt.Println(out)
		return
	}

	kinds := essio.Kinds
	if *table1 {
		kinds = []essio.Kind{essio.Baseline, essio.PPM, essio.Wavelet, essio.NBody}
	}
	// The experiments are independent deterministic simulations, so they
	// run concurrently on a worker pool.
	fmt.Fprintf(os.Stderr, "running %d experiments concurrently (%d nodes each)...\n", len(kinds), *nodes)
	results, err := essio.RunAllWorkers(kinds, func(k essio.Kind) essio.Config {
		var cfg essio.Config
		if *small {
			cfg = essio.SmallConfig(k, *nodes)
		} else {
			cfg = essio.Config{Kind: k, Nodes: *nodes}
		}
		cfg.Seed = *seed
		if *withTrace {
			cfg.ObsLevel = essio.ObsTrace
		}
		return cfg
	}, *workers)
	if err != nil {
		fail(1, err)
	}

	if *dumpDir != "" {
		for _, k := range kinds {
			path, n, err := dumpTrace(*dumpDir, *format, k, results[k])
			if err != nil {
				fail(1, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", n, path)
		}
	}

	fmt.Println(essio.Table1(results))
	if *table1 {
		return
	}
	for _, spec := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		kind, _ := essio.KindForFigure(spec)
		out, err := essio.Figure(spec, results[kind])
		if err != nil {
			fail(1, err)
		}
		fmt.Println(out)
		if *svgDir != "" {
			svg, err := essio.FigureSVG(spec, results[kind])
			if err != nil {
				fail(1, err)
			}
			path := filepath.Join(*svgDir, fmt.Sprintf("figure%d.svg", spec))
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				fail(1, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	for _, k := range kinds {
		fmt.Println(essio.SizeClassReport(results[k]))
		fmt.Println(essio.LevelsReport(results[k]))
	}
	if *withTrace {
		// The per-request lenses over the causal I/O journal: where each
		// size class spends its time, and the longest dependency chain.
		for _, k := range kinds {
			res := results[k]
			fmt.Printf("per-request latency breakdown (%s, %d journal events)\n", k, len(res.IOTrace))
			fmt.Print(essio.ComputeIOBreakdown(res.IOTrace).Table())
			fmt.Print(essio.ComputeIOCriticalPath(res.IOTrace).Table())
			fmt.Println()
		}
	}
	// The paper's stated next step: the characterization as a parameter
	// set for system design and tuning. Profiles shard the per-node traces
	// across the worker pool; the output is identical to the sequential
	// characterization.
	for _, k := range kinds {
		prof := essio.CharacterizeResultParallel(results[k], *workers)
		fmt.Println(prof)
		d := prof.Derive(16)
		fmt.Printf("derived tuning for %s: read-ahead %d KB, %s", k, d.ReadAheadKB, d.WritePolicy)
		if d.SuggestedMemoryMB > 16 {
			fmt.Printf(", memory -> %d MB", d.SuggestedMemoryMB)
		}
		if d.SeparateLogDisk {
			fmt.Printf(", separate log device")
		}
		fmt.Println()
		for _, r := range d.Rationale {
			fmt.Printf("  - %s\n", r)
		}
		fmt.Println()
	}
}
