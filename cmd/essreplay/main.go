// Command essreplay re-executes a captured trace against alternative disk
// and queue configurations — the tuning-evaluation companion to essanalyze.
//
// Usage:
//
//	essreplay -i combined.trc                       # Beowulf-default config
//	essreplay -i combined.trc -nomerge              # elevator merging off
//	essreplay -i combined.trc -xfer 8e6 -seek 0.5   # faster drive
//	essreplay -i combined.trc -closed               # device-bound throughput
package main

import (
	"flag"
	"fmt"
	"os"

	"essio"
	"essio/internal/trace"
)

func main() {
	in := flag.String("i", "", "input trace file (required)")
	noMerge := flag.Bool("nomerge", false, "disable elevator merging")
	maxSectors := flag.Int("maxreq", 0, "merge cap in sectors (0 = default 64)")
	closed := flag.Bool("closed", false, "closed-loop (device-bound) replay")
	xfer := flag.Float64("xfer", 0, "override media transfer rate (bytes/s)")
	seekScale := flag.Float64("seek", 1, "scale seek times by this factor")
	rpm := flag.Float64("rpm", 0, "override spindle speed")
	format := flag.String("format", "auto", "input format: auto, bin, text, or col")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "essreplay: -i is required")
		os.Exit(2)
	}
	var (
		src  essio.TraceSource
		cls  func() error = func() error { return nil }
		oerr error
	)
	if *in == "-" {
		src, oerr = trace.NewReaderSource(os.Stdin, *format)
	} else {
		fs, err := essio.OpenTraceFile(*in, *format)
		if err == nil {
			src, cls = fs, fs.Close
		}
		oerr = err
	}
	if oerr != nil {
		fmt.Fprintln(os.Stderr, "essreplay:", oerr)
		os.Exit(1)
	}
	// Replay needs the request sequence, so collect it from the
	// incremental decoder in one streaming pass.
	recs, err := essio.CollectTrace(src)
	if cerr := cls(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "essreplay:", err)
		os.Exit(1)
	}

	cfg := essio.ReplayConfig{ClosedLoop: *closed}
	d := essio.DefaultDiskParams()
	if *xfer > 0 {
		d.TransferRate = *xfer
	}
	if *rpm > 0 {
		d.RPM = *rpm
	}
	if *seekScale != 1 {
		d.TrackSeek = essio.Duration(float64(d.TrackSeek) * *seekScale)
		d.FullSeek = essio.Duration(float64(d.FullSeek) * *seekScale)
	}
	cfg.Disk = d
	if *noMerge {
		cfg.MaxRequestSectors = -1
	} else if *maxSectors > 0 {
		cfg.MaxRequestSectors = *maxSectors
	}

	rep, err := essio.ReplayTrace(recs, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "essreplay:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
}
