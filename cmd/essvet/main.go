// Command essvet runs the repository's custom static-analysis suite —
// the internal/vetters analyzers that machine-check the pipeline's
// correctness invariants (exact accumulator merges, row/column parity,
// seeded randomness, deterministic output order, consumed sink errors,
// unretained zero-copy spans, read-only mmap views, cross-shard engine
// isolation) plus the stock copylocks and nilfunc passes.
//
// Usage:
//
//	go run ./cmd/essvet ./...              # whole tree, all analyzers
//	go run ./cmd/essvet -sinkerr ./cmd/... # one analyzer, one subtree
//	go run ./cmd/essvet -sarif out.sarif -baseline .essvet-baseline.json ./...
//
// Given package patterns, essvet re-executes itself through
// `go vet -vettool`, so the go command drives package loading, export
// data, and caching exactly as it does for the built-in vet; invoked
// by the go command (with -V=full or unit-check config files) it acts
// as a standard unitchecker-based vet tool.
//
// With -sarif the re-exec runs `go vet -json`, the diagnostics are
// written to the given file as SARIF 2.1.0, and the exit status
// reflects only findings *not* covered by the -baseline file (default
// .essvet-baseline.json at the repo root when present), so a CI gate
// fails on new findings while accepted ones ride along in the report.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"essio/internal/vetters"
	"essio/internal/vetters/sarif"
)

func main() {
	args := os.Args[1:]
	if invokedByGoVet(args) {
		unitchecker.Main(vetters.All()...) // does not return
	}

	sarifOut, baselinePath, rest := splitReportFlags(args)
	if sarifOut != "" {
		os.Exit(runSARIF(sarifOut, baselinePath, rest))
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "essvet:", err)
		os.Exit(1)
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe}, rest...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "essvet:", err)
		os.Exit(1)
	}
}

// runSARIF drives the vet pass in JSON mode, writes the SARIF report,
// and returns the exit code: nonzero only for findings the baseline
// does not cover.
func runSARIF(sarifOut, baselinePath string, rest []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "essvet:", err)
		return 1
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe, "-json"}, rest...)
	cmd := exec.Command("go", vetArgs...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	diags, perr := sarif.ParseVetJSON(stdout.Bytes(), stderr.Bytes())
	if perr != nil {
		fmt.Fprintf(os.Stderr, "essvet: vet output not parseable: %v\n%s", perr, stderr.String())
		return 1
	}
	// A vet failure with no diagnostics is a build or tool error, not a
	// finding; surface it verbatim.
	if runErr != nil && len(diags) == 0 {
		fmt.Fprintf(os.Stderr, "essvet: %v\n%s", runErr, stderr.String())
		return 1
	}

	baseline := &sarif.Baseline{}
	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "essvet:", err)
			return 1
		}
		if baseline, err = sarif.ParseBaseline(data); err != nil {
			fmt.Fprintln(os.Stderr, "essvet:", err)
			return 1
		}
	}
	accepted, fresh := baseline.Filter(diags)

	f, err := os.Create(sarifOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "essvet:", err)
		return 1
	}
	if err := sarif.Encode(f, "essvet", diags); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "essvet:", err)
		return 1
	}

	for _, d := range fresh {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
	}
	fmt.Fprintf(os.Stderr, "essvet: %d finding(s), %d baseline-accepted, %d new; SARIF written to %s\n",
		len(diags), len(accepted), len(fresh), sarifOut)
	if len(fresh) > 0 {
		return 1
	}
	return 0
}

// splitReportFlags extracts -sarif and -baseline (with = or separate
// value) from args, returning the remaining vet arguments untouched.
// When -sarif is given without -baseline, the default baseline file is
// used if it exists.
func splitReportFlags(args []string) (sarifOut, baselinePath string, rest []string) {
	const defaultBaseline = ".essvet-baseline.json"
	take := func(i *int, name string) (string, bool) {
		a := args[*i]
		if v, ok := strings.CutPrefix(a, "-"+name+"="); ok {
			return v, true
		}
		if a == "-"+name && *i+1 < len(args) {
			*i++
			return args[*i], true
		}
		return "", false
	}
	for i := 0; i < len(args); i++ {
		if v, ok := take(&i, "sarif"); ok {
			sarifOut = v
			continue
		}
		if v, ok := take(&i, "baseline"); ok {
			baselinePath = v
			continue
		}
		rest = append(rest, args[i])
	}
	if sarifOut != "" && baselinePath == "" {
		if _, err := os.Stat(defaultBaseline); err == nil {
			baselinePath = defaultBaseline
		}
	}
	return sarifOut, baselinePath, rest
}

// invokedByGoVet reports whether the go command is driving this process
// as a vet tool: it probes with -V=full / -flags and then passes one
// *.cfg file per package.
func invokedByGoVet(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
