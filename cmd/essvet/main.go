// Command essvet runs the repository's custom static-analysis suite —
// the internal/vetters analyzers that machine-check the pipeline's
// correctness invariants (exact accumulator merges, seeded randomness,
// deterministic output order, consumed sink errors, unretained
// zero-copy spans).
//
// Usage:
//
//	go run ./cmd/essvet ./...            # whole tree, all analyzers
//	go run ./cmd/essvet -sinkerr ./cmd/... # one analyzer, one subtree
//
// Given package patterns, essvet re-executes itself through
// `go vet -vettool`, so the go command drives package loading, export
// data, and caching exactly as it does for the built-in vet; invoked
// by the go command (with -V=full or unit-check config files) it acts
// as a standard unitchecker-based vet tool.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"essio/internal/vetters"
)

func main() {
	args := os.Args[1:]
	if invokedByGoVet(args) {
		unitchecker.Main(vetters.All()...) // does not return
	}

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "essvet:", err)
		os.Exit(1)
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe}, args...)
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "essvet:", err)
		os.Exit(1)
	}
}

// invokedByGoVet reports whether the go command is driving this process
// as a vet tool: it probes with -V=full / -flags and then passes one
// *.cfg file per package.
func invokedByGoVet(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" || strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
