// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices DESIGN.md calls out and
// micro-benchmarks of the substrates.
//
// The Table/Figure benchmarks run the corresponding experiment end to end
// and report the quantities the paper tabulates (read/write percentages,
// request rates, size-class counts) as benchmark metrics, so
//
//	go test -bench 'Table1|Figure' -benchtime 1x
//
// reproduces the evaluation. Full-scale experiments take seconds to minutes
// of wall time each; the Ablation benchmarks run reduced configurations.
package essio_test

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"essio"
	"essio/internal/analysis"
	"essio/internal/apps/nbody"
	"essio/internal/apps/ppm"
	"essio/internal/apps/wavelet"
	"essio/internal/blockio"
	"essio/internal/buffercache"
	"essio/internal/disk"
	"essio/internal/driver"
	"essio/internal/ethernet"
	"essio/internal/experiment"
	"essio/internal/kernel"
	"essio/internal/pvm"
	"essio/internal/replay"
	"essio/internal/sim"
	"essio/internal/trace"
)

// runExperiment executes one full-scale experiment per benchmark iteration
// and reports Table 1 metrics, allocation counts, and the number of trace
// records resident in memory at once (per-node buffers plus the merged
// copy) — the quantity the streaming pipeline exists to bound.
func runExperiment(b *testing.B, cfg essio.Config) *essio.Result {
	b.Helper()
	b.ReportAllocs()
	var res *essio.Result
	for i := 0; i < b.N; i++ {
		r, err := essio.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	s := analysis.Summarize(string(cfg.Kind), res.Merged, res.Duration, res.Nodes)
	b.ReportMetric(s.ReadPct, "reads%")
	b.ReportMetric(s.WritePct, "writes%")
	b.ReportMetric(s.ReqPerSec, "req/s/disk")
	b.ReportMetric(s.TotalPerDisk, "total/disk")
	b.ReportMetric(res.Duration.Seconds(), "virtsec")
	b.ReportMetric(recordsResident(res), "records-resident")
	return res
}

// recordsResident counts the trace records a Result holds in memory: the
// per-node capture buffers plus the materialized merged view. A consumer
// that analyzes through Result.Source() instead of Merged halves this.
func recordsResident(res *essio.Result) float64 {
	n := len(res.Merged)
	for _, t := range res.PerNode {
		n += len(t)
	}
	return float64(n)
}

func reportClasses(b *testing.B, res *essio.Result) {
	c := analysis.ClassifySizes(res.Merged)
	total := float64(c.Block1K + c.Page4K + c.Large + c.Other)
	if total == 0 {
		return
	}
	b.ReportMetric(100*float64(c.Block1K)/total, "1KB%")
	b.ReportMetric(100*float64(c.Page4K)/total, "4KB%")
	b.ReportMetric(100*float64(c.Large)/total, "big%")
}

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1Baseline(b *testing.B) {
	runExperiment(b, essio.Config{Kind: essio.Baseline, Nodes: 16})
}

func BenchmarkTable1PPM(b *testing.B) {
	runExperiment(b, essio.Config{Kind: essio.PPM, Nodes: 16})
}

func BenchmarkTable1Wavelet(b *testing.B) {
	runExperiment(b, essio.Config{Kind: essio.Wavelet, Nodes: 16})
}

func BenchmarkTable1NBody(b *testing.B) {
	runExperiment(b, essio.Config{Kind: essio.NBody, Nodes: 16})
}

// --- Figures ----------------------------------------------------------------

// BenchmarkFigure1Baseline regenerates the baseline sector-vs-time scatter.
func BenchmarkFigure1Baseline(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.Baseline, Nodes: 16})
	pts := analysis.SectorSeries(res.Merged)
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkFigure2PPM regenerates the PPM request-size series.
func BenchmarkFigure2PPM(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.PPM, Nodes: 16})
	reportClasses(b, res)
}

// BenchmarkFigure3Wavelet regenerates the wavelet request-size series and
// reports the largest streaming request.
func BenchmarkFigure3Wavelet(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.Wavelet, Nodes: 16})
	reportClasses(b, res)
	maxKB := 0
	for _, r := range res.Merged {
		if r.KB() > maxKB {
			maxKB = r.KB()
		}
	}
	b.ReportMetric(float64(maxKB), "maxKB")
}

// BenchmarkFigure4NBody regenerates the N-body request-size series.
func BenchmarkFigure4NBody(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.NBody, Nodes: 16})
	reportClasses(b, res)
}

// BenchmarkFigure5Combined regenerates the combined request-size series.
func BenchmarkFigure5Combined(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.Combined, Nodes: 16})
	reportClasses(b, res)
	maxKB := 0
	for _, r := range res.Merged {
		if r.KB() > maxKB {
			maxKB = r.KB()
		}
	}
	b.ReportMetric(float64(maxKB), "maxKB")
}

// BenchmarkFigure6Combined regenerates the combined sector scatter.
func BenchmarkFigure6Combined(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.Combined, Nodes: 16})
	low := 0
	for _, r := range res.Merged {
		if r.Sector < 200000 {
			low++
		}
	}
	b.ReportMetric(100*float64(low)/float64(len(res.Merged)), "low-sector%")
}

// BenchmarkFigure7Spatial regenerates the spatial-locality bands and
// reports the Pareto concentration.
func BenchmarkFigure7Spatial(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.Combined, Nodes: 16})
	bands := analysis.SpatialBands(res.Merged, 100000, res.DiskSectors)
	b.ReportMetric(100*analysis.Pareto(bands, 0.8), "bands-for-80%")
}

// BenchmarkFigure8Temporal regenerates the per-sector heat and reports the
// two hottest sectors of disk 0.
func BenchmarkFigure8Temporal(b *testing.B) {
	res := runExperiment(b, essio.Config{Kind: essio.Combined, Nodes: 16})
	heat := analysis.TemporalHeat(analysis.FilterNode(res.Merged, 0), res.Duration)
	hot := analysis.Hottest(heat, 2)
	if len(hot) == 2 {
		b.ReportMetric(float64(hot[0].Sector), "hot1-sector")
		b.ReportMetric(float64(hot[1].Sector), "hot2-sector")
	}
}

// --- Ablations ---------------------------------------------------------------

// ablationConfig is a reduced wavelet workload against which the design
// knobs are toggled: 2 nodes, full-size application.
func ablationConfig() essio.Config {
	cfg := essio.Config{Kind: essio.Wavelet, Nodes: 2}
	w := wavelet.DefaultParams()
	w.Iterations = 24
	cfg.Wavelet = w
	return cfg
}

// BenchmarkAblationNoMerge disables elevator merging: everything above the
// block/page size must disappear from the request mix.
func BenchmarkAblationNoMerge(b *testing.B) {
	cfg := ablationConfig()
	cfg.Node = func(i int) kernel.Config {
		c := kernel.DefaultConfig(uint8(i))
		c.MaxRequestSectors = -1
		return c
	}
	res := runExperiment(b, cfg)
	big := 0
	for _, r := range res.Merged {
		if r.KB() > 4 {
			big++
		}
	}
	b.ReportMetric(float64(big), ">4KB-reqs")
}

// BenchmarkAblationReadahead sweeps the read-ahead window; the 16 KB
// streaming class should track it.
func BenchmarkAblationReadahead(b *testing.B) {
	for _, ra := range []int{0, 4, 16, 32} {
		ra := ra
		b.Run(map[int]string{0: "off", 4: "4KB", 16: "16KB", 32: "32KB"}[ra], func(b *testing.B) {
			cfg := ablationConfig()
			cfg.Node = func(i int) kernel.Config {
				c := kernel.DefaultConfig(uint8(i))
				c.ReadAheadBlocks = ra
				return c
			}
			res := runExperiment(b, cfg)
			maxKB := 0
			for _, r := range res.Merged {
				if r.Op == trace.Read && r.KB() > maxKB {
					maxKB = r.KB()
				}
			}
			b.ReportMetric(float64(maxKB), "max-read-KB")
		})
	}
}

// BenchmarkAblationWriteThrough compares write-back against write-through.
func BenchmarkAblationWriteThrough(b *testing.B) {
	for _, wt := range []bool{false, true} {
		wt := wt
		name := "writeback"
		if wt {
			name = "writethrough"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ablationConfig()
			cfg.Node = func(i int) kernel.Config {
				c := kernel.DefaultConfig(uint8(i))
				c.WriteThrough = wt
				return c
			}
			res := runExperiment(b, cfg)
			writes := 0
			for _, r := range res.Merged {
				if r.Op == trace.Write {
					writes++
				}
			}
			b.ReportMetric(float64(writes), "writes")
		})
	}
}

// BenchmarkAblationSelfTrace measures how much of the write traffic is the
// instrumentation's own trace logging.
func BenchmarkAblationSelfTrace(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		name := "selftrace-on"
		if off {
			name = "selftrace-off"
		}
		b.Run(name, func(b *testing.B) {
			cfg := essio.Config{Kind: essio.Baseline, Nodes: 2, BaselineDuration: 600 * essio.Second}
			cfg.Node = func(i int) kernel.Config {
				c := kernel.DefaultConfig(uint8(i))
				c.DisableSelfTrace = off
				return c
			}
			runExperiment(b, cfg)
		})
	}
}

// BenchmarkAblationMemory sweeps node RAM; the 4 KB paging class intensity
// should fall as memory grows.
func BenchmarkAblationMemory(b *testing.B) {
	for _, mb := range []int{8, 16, 32} {
		mb := mb
		b.Run(map[int]string{8: "8MB", 16: "16MB", 32: "32MB"}[mb], func(b *testing.B) {
			cfg := ablationConfig()
			cfg.Node = func(i int) kernel.Config {
				c := kernel.DefaultConfig(uint8(i))
				c.MemoryBytes = mb << 20
				return c
			}
			res := runExperiment(b, cfg)
			reportClasses(b, res)
		})
	}
}

// --- Substrate micro-benchmarks ----------------------------------------------

func BenchmarkDiskService(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	d := disk.New(e, disk.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sector := uint32((i * 9973) % 1000000)
		if _, err := d.Service(sector, 8, i%2 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElevatorSubmit(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	q := blockio.New(e)
	q.SetStart(func(r *blockio.Request) {
		e.After(sim.Millisecond, func() { q.Done(r, nil) })
	})
	buf := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Submit(uint32((i*2)%100000), buf, true, trace.OriginData); err != nil {
			b.Fatal(err)
		}
		if i%64 == 0 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

func BenchmarkTraceMarshal(b *testing.B) {
	r := trace.Record{Time: 123456, Sector: 99999, Count: 8, Op: trace.Write}
	buf := make([]byte, trace.RecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Marshal(buf)
		if _, err := trace.UnmarshalRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Microsecond, func() {})
		if i%1024 == 0 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

// BenchmarkEngineStep prices one pop-dispatch cycle of the typed 4-ary
// event heap with a standing event population (the free-list fast path:
// every fired event is recycled into the next schedule).
func BenchmarkEngineStep(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	const standing = 1024
	var tick func()
	tick = func() { e.After(sim.Microsecond, tick) }
	for i := 0; i < standing; i++ {
		e.After(sim.Duration(i+1)*sim.Microsecond, tick)
	}
	b.ResetTimer()
	for e.EventsFired() < uint64(b.N) {
		e.Run(e.Now().Add(sim.Millisecond))
	}
}

// BenchmarkE1Sharded runs the PPM experiment (the paper's first
// application measurement) on a 64-node cluster, sequential versus
// sharded across every CPU, so recorded artifacts track the scaling of
// the conservative-lookahead engine. The two variants produce
// byte-identical results (asserted by internal/experiment's shard
// tests); on a multi-core runner the sharded one is expected to be
// at least twice as fast.
func BenchmarkE1Sharded(b *testing.B) {
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiment.SmallConfig(experiment.PPM, 64)
				cfg.Shards = shards
				res, err := experiment.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(res.Merged)), "records")
			}
		})
	}
}

func BenchmarkWaveletTransform512(b *testing.B) {
	img := wavelet.SyntheticImage(512, 1)
	for i := 0; i < b.N; i++ {
		g, err := wavelet.FromBytes(img, 512)
		if err != nil {
			b.Fatal(err)
		}
		if err := g.Forward(5, wavelet.D4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPPMStep240x480(b *testing.B) {
	g := ppm.NewGrid(240, 480)
	g.InitBlast(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Step(g.CFL(0.4))
	}
}

func BenchmarkNBodyStep8K(b *testing.B) {
	s := nbody.NewPlummer(8192, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(0.01)
	}
	b.ReportMetric(float64(s.Interactions)/float64(b.N), "interactions/step")
}

func BenchmarkExperimentSmallPPM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Run(experiment.SmallConfig(experiment.PPM, 2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacterizeTrace prices the per-request I/O journal on a
// whole experiment: the small PPM run end to end with the journal off
// versus collecting at obs trace, the trace arm also exporting the
// Chrome JSON and folding the latency-breakdown lens, since that is
// the work a tracing user actually pays for. The off arm must be
// indistinguishable from an untraced run (one level comparison per
// would-be event), and DESIGN.md budgets the trace arm at ≤10% over
// it; the events/op metric sizes the journal the run produces.
func BenchmarkCharacterizeTrace(b *testing.B) {
	for _, lv := range []struct {
		name  string
		level essio.ObsLevel
	}{
		{"off", essio.ObsOff},
		{"trace", essio.ObsTrace},
	} {
		b.Run(lv.name, func(b *testing.B) {
			b.ReportAllocs()
			events := 0
			for i := 0; i < b.N; i++ {
				cfg := essio.SmallConfig(essio.PPM, 2)
				cfg.ObsLevel = lv.level
				res, err := essio.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if lv.level == essio.ObsTrace {
					if len(res.IOTrace) == 0 {
						b.Fatal("trace-level run journaled no events")
					}
					if err := essio.WriteChromeTrace(io.Discard, res.IOTrace); err != nil {
						b.Fatal(err)
					}
					_ = essio.ComputeIOBreakdown(res.IOTrace)
				}
				events = len(res.IOTrace)
			}
			b.ReportMetric(float64(events), "events/op")
		})
	}
}

func BenchmarkEthernetTransfer(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	net := ethernet.New(e, ethernet.DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Send(1500, func() {}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 0 {
			e.RunUntilIdle()
		}
	}
	e.RunUntilIdle()
}

func BenchmarkPVMBarrier16(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	pv := pvm.New(e, ethernet.New(e, ethernet.DefaultParams()))
	tasks := make([]*pvm.Task, 16)
	for i := range tasks {
		tasks[i] = pv.Enroll(i)
	}
	g := pv.NewGroup(tasks)
	b.ResetTimer()
	rounds := 0
	for i := range tasks {
		tk := tasks[i]
		e.Spawn("m", func(p *sim.Proc) {
			for r := 0; r < b.N; r++ {
				if err := g.Barrier(p, tk); err != nil {
					b.Error(err)
					return
				}
			}
			rounds++
		})
	}
	e.RunUntilIdle()
	if rounds != 16 {
		b.Fatalf("rounds = %d", rounds)
	}
}

func BenchmarkBufferCacheHit(b *testing.B) {
	e := sim.NewEngine(1)
	defer e.Close()
	d := disk.New(e, disk.DefaultParams())
	q := blockio.New(e)
	drv := driver.New(e, d, q, 0, trace.NewRing(1024))
	drv.SetLevel(driver.LevelOff)
	bc := buffercache.New(e, q, 256)
	e.Spawn("warm", func(p *sim.Proc) {
		if _, err := bc.ReadBlock(p, 7, trace.OriginData); err != nil {
			b.Error(err)
		}
	})
	e.RunUntilIdle()
	b.ResetTimer()
	e.Spawn("bench", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			if _, err := bc.ReadBlock(p, 7, trace.OriginData); err != nil {
				b.Error(err)
				return
			}
		}
	})
	e.RunUntilIdle()
}

func BenchmarkReplayThroughput(b *testing.B) {
	// Build a synthetic 1000-request trace once, replay per iteration.
	var recs []trace.Record
	for i := 0; i < 1000; i++ {
		recs = append(recs, trace.Record{
			Time: sim.Time(i) * sim.Time(sim.Millisecond) * 50, Sector: uint32((i % 100) * 64),
			Count: 2, Op: trace.Write, Origin: trace.OriginData,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replay.Replay(recs, replay.Config{ClosedLoop: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming pipeline benchmarks -----------------------------------------
//
// These quantify the memory win of the Source/Sink path: the batch variants
// materialize a merged slice before analyzing, while the streaming variants
// hold one buffered record per input and fold each record into accumulators
// as it is produced.

// benchTraces builds nNodes per-node traces of perNode records each, sorted
// by time within each node like real driver captures.
func benchTraces(nNodes, perNode int) [][]trace.Record {
	traces := make([][]trace.Record, nNodes)
	for n := range traces {
		recs := make([]trace.Record, perNode)
		for i := range recs {
			recs[i] = trace.Record{
				Time:   sim.Time(i*nNodes+n) * sim.Time(sim.Millisecond),
				Node:   uint8(n),
				Sector: uint32((i * 64) % 200000),
				Count:  uint16(2 + i%8),
				Op:     trace.Op(i % 2),
				Origin: trace.OriginData,
			}
		}
		traces[n] = recs
	}
	return traces
}

func BenchmarkMergeBatch(b *testing.B) {
	traces := benchTraces(16, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		merged := trace.Merge(traces...)
		if len(merged) != 16*4096 {
			b.Fatal("bad merge")
		}
	}
}

func BenchmarkMergeStreaming(b *testing.B) {
	traces := benchTraces(16, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		sink := trace.SinkFunc(func(trace.Record) error { n++; return nil })
		if _, err := trace.Copy(sink, trace.MergeSlices(traces...)); err != nil {
			b.Fatal(err)
		}
		if n != 16*4096 {
			b.Fatal("bad merge")
		}
	}
}

func BenchmarkCharacterizeBatch(b *testing.B) {
	traces := benchTraces(16, 4096)
	merged := trace.Merge(traces...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = essio.Characterize("bench", merged, 70*sim.Second, 16, 4194304)
	}
}

func BenchmarkCharacterizeStreaming(b *testing.B) {
	traces := benchTraces(16, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := essio.NewProfiler("bench", 70*sim.Second, 16, 4194304)
		if _, err := trace.Copy(p, trace.MergeSlices(traces...)); err != nil {
			b.Fatal(err)
		}
		_ = p.Profile()
	}
}

// BenchmarkCharacterizeColumnar is BenchmarkCharacterizeStreaming's
// fixture characterized from a columnar trace file: the mmap-backed
// source yields zero-copy column views and the profiler folds them with
// the vectorized AddCols scans, no per-record materialization anywhere.
func BenchmarkCharacterizeColumnar(b *testing.B) {
	traces := benchTraces(16, 4096)
	path := filepath.Join(b.TempDir(), "bench.col")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	w := essio.NewTraceColWriter(f)
	n, err := trace.Copy(w, trace.MergeSlices(traces...))
	if err == nil {
		err = w.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil || n != 16*4096 {
		b.Fatalf("fixture: n=%d err=%v", n, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, err := essio.OpenTraceFile(path, essio.TraceFormatCol)
		if err != nil {
			b.Fatal(err)
		}
		p := essio.NewProfiler("bench", 70*sim.Second, 16, 4194304)
		if _, err := trace.Copy(p, src); err != nil {
			b.Fatal(err)
		}
		_ = p.Profile()
		if err := src.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// countBatchSink counts records a whole batch at a time.
type countBatchSink struct{ n int }

func (s *countBatchSink) AddBatch(recs []trace.Record) error { s.n += len(recs); return nil }

// BenchmarkMergeBatchStreaming drains the k-way merge at batch
// granularity: whole record buffers move from the loser tree into a batch
// sink, no per-record interface dispatch on either side.
func BenchmarkMergeBatchStreaming(b *testing.B) {
	traces := benchTraces(16, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &countBatchSink{}
		if _, err := essio.CopyTraceBatches(sink, essio.ToTraceBatchSource(trace.MergeSlices(traces...))); err != nil {
			b.Fatal(err)
		}
		if sink.n != 16*4096 {
			b.Fatal("bad merge")
		}
	}
}

// BenchmarkCharacterizeParallel shards the per-node traces of the same
// fixture across 1, 2, 4, and 8 workers; every variant produces the exact
// sequential profile.
func BenchmarkCharacterizeParallel(b *testing.B) {
	traces := benchTraces(16, 4096)
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(map[int]string{1: "1", 2: "2", 4: "4", 8: "8"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = essio.ProfileParallel("bench", traces, 70*sim.Second, 16, 4194304, workers)
			}
		})
	}
}

// BenchmarkCharacterizeObs prices the observability layer on the
// characterizer's per-record hot path: the streaming pass of
// BenchmarkCharacterizeStreaming with the profiler instrumented at each
// obs level. "none" is the uninstrumented baseline; "off" must be
// indistinguishable from it (one nil-handle check per record), and
// "counters" must stay within 5% — the budget DESIGN.md commits to for
// always-on counting. "full" adds the batch-length histogram and span
// timing and is allowed to cost more.
func BenchmarkCharacterizeObs(b *testing.B) {
	traces := benchTraces(16, 4096)
	levels := []struct {
		name string
		reg  *essio.ObsRegistry
	}{
		{"none", nil},
		{"off", essio.NewObsRegistry(essio.ObsOff)},
		{"counters", essio.NewObsRegistry(essio.ObsCounters)},
		{"full", essio.NewObsRegistry(essio.ObsFull)},
	}
	for _, lv := range levels {
		b.Run(lv.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := essio.NewProfiler("bench", 70*sim.Second, 16, 4194304)
				if lv.reg != nil {
					p.Instrument(lv.reg)
				}
				if _, err := trace.Copy(p, trace.MergeSlices(traces...)); err != nil {
					b.Fatal(err)
				}
				_ = p.Profile()
			}
		})
	}
}
