module essio

go 1.22
