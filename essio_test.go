package essio_test

import (
	"bytes"
	"strings"
	"testing"

	"essio"
)

// TestPublicAPIEndToEnd exercises the facade the way a downstream user
// would: run an experiment, summarize, render a figure, persist the trace,
// and derive tuning parameters.
func TestPublicAPIEndToEnd(t *testing.T) {
	res, err := essio.Run(essio.SmallConfig(essio.Wavelet, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || len(res.Merged) == 0 {
		t.Fatalf("res = %+v", res)
	}

	s := essio.Summarize("wavelet", res.Merged, res.Duration, res.Nodes)
	if s.Reads+s.Writes != len(res.Merged) {
		t.Fatalf("summary counts wrong: %+v", s)
	}

	fig, err := essio.Figure(3, res)
	if err != nil || !strings.Contains(fig, "Figure 3") {
		t.Fatalf("figure: %v\n%s", err, fig)
	}

	// Binary trace round trip through the facade.
	var buf bytes.Buffer
	if err := essio.WriteTrace(&buf, res.Merged); err != nil {
		t.Fatal(err)
	}
	back, err := essio.ReadTrace(&buf)
	if err != nil || len(back) != len(res.Merged) {
		t.Fatalf("trace round trip: %d vs %d, %v", len(back), len(res.Merged), err)
	}

	prof := essio.CharacterizeResult(res)
	if prof.Summary.Reads != s.Reads {
		t.Fatalf("profile disagrees with summary: %+v", prof.Summary)
	}
	d := prof.Derive(16)
	if d.ReadAheadKB == 0 {
		t.Fatalf("no derived parameters: %+v", d)
	}

	// Locality helpers.
	bands := essio.SpatialBands(res.Merged, 100000, res.DiskSectors)
	if len(bands) == 0 {
		t.Fatal("no bands")
	}
	heat := essio.TemporalHeat(res.Merged, res.Duration)
	if len(essio.Hottest(heat, 3)) == 0 {
		t.Fatal("no heat")
	}
}

// TestPublicAPICustomCluster runs a custom program through the exported
// cluster surface.
func TestPublicAPICustomCluster(t *testing.T) {
	c, err := essio.NewCluster(essio.ClusterConfig{Nodes: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ran := 0
	prog := &essio.Program{
		Name: "probe", ImagePath: "/usr/bin/probe", TextBytes: 8192,
		Main: func(ctx *essio.Process) {
			ctx.ComputeFlops(1e5)
			ran++
		},
	}
	if err := c.Install(prog); err != nil {
		t.Fatal(err)
	}
	procs := c.Launch(prog)
	if _, ok := c.WaitAll(procs, 10*essio.Minute); !ok {
		t.Fatal("did not finish")
	}
	if ran != 2 {
		t.Fatalf("ran on %d nodes", ran)
	}
}

func TestDefaultParamsExported(t *testing.T) {
	if p := essio.DefaultPPMParams(); p.NX != 240 || p.NY != 480 || p.Grids != 4 {
		t.Fatalf("ppm params = %+v", p)
	}
	if w := essio.DefaultWaveletParams(); w.N != 512 || w.Levels != 5 {
		t.Fatalf("wavelet params = %+v", w)
	}
	if n := essio.DefaultNBodyParams(); n.Particles != 8192 {
		t.Fatalf("nbody params = %+v", n)
	}
	if cfg := essio.DefaultNodeConfig(3); cfg.MemoryBytes != 16<<20 || cfg.NodeID != 3 {
		t.Fatalf("node config = %+v", cfg)
	}
}

// TestPublicAPIStreaming exercises the streaming surface through the
// facade and pins the acceptance criterion of the pipeline refactor:
// traces written and analyzed through the Source/Sink path are
// byte-identical / value-identical to the batch path.
func TestPublicAPIStreaming(t *testing.T) {
	res, err := essio.Run(essio.SmallConfig(essio.Wavelet, 2))
	if err != nil {
		t.Fatal(err)
	}

	// Batch encode vs streaming encode of the same trace: same bytes.
	var batch bytes.Buffer
	if err := essio.WriteTrace(&batch, res.Merged); err != nil {
		t.Fatal(err)
	}
	var streamed bytes.Buffer
	w := essio.NewTraceWriter(&streamed)
	n, err := essio.CopyTrace(w, res.Source())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n != len(res.Merged) {
		t.Fatalf("streamed %d records, merged has %d", n, len(res.Merged))
	}
	if !bytes.Equal(batch.Bytes(), streamed.Bytes()) {
		t.Fatal("streaming encoder output differs from batch encoder")
	}

	// Streaming decode + single-pass analysis vs the batch metrics.
	sum := essio.NewSummaryAcc("wavelet", res.Duration, res.Nodes)
	hist := essio.NewSizeHistAcc()
	if _, err := essio.CopyTrace(essio.TeeSinks(sum, hist), essio.NewTraceReader(&streamed)); err != nil {
		t.Fatal(err)
	}
	if got, want := sum.Summary(), essio.Summarize("wavelet", res.Merged, res.Duration, res.Nodes); got != want {
		t.Fatalf("streamed summary %+v != batch %+v", got, want)
	}
}
