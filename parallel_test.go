package essio_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"essio"
)

// TestParallelProfileMatchesSequential runs every experiment kind at small
// scale and requires the multi-core characterization to deep-equal the
// sequential one at 1, 2, and 8 workers — the acceptance criterion of the
// parallel profile driver. The experiments themselves run concurrently.
func TestParallelProfileMatchesSequential(t *testing.T) {
	cfgs := make([]essio.Config, len(essio.Kinds))
	for i, k := range essio.Kinds {
		cfgs[i] = essio.SmallConfig(k, 2)
	}
	results, err := essio.RunConcurrent(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		want := essio.CharacterizeResult(res)
		for _, workers := range []int{1, 2, 8} {
			got := essio.CharacterizeResultParallel(res, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: %d-worker profile diverged from sequential:\n got %+v\nwant %+v",
					cfgs[i].Kind, workers, got, want)
			}
		}
	}
}

// TestChunkedFileAccumulatorsMatchSequential writes a real merged trace to
// disk, re-reads it as record-aligned chunks, and requires chunk-wise
// accumulators folded with Merge to equal the one-pass accumulators — the
// essanalyze -workers path.
func TestChunkedFileAccumulatorsMatchSequential(t *testing.T) {
	res, err := essio.Run(essio.SmallConfig(essio.Wavelet, 2))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wavelet.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := essio.WriteTrace(f, res.Merged); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	seqSum := essio.NewSummaryAcc("t", res.Duration, res.Nodes)
	seqInter := essio.NewInterAccessAcc()
	seqHeat := essio.NewHeatAcc()
	src, err := essio.OpenTraceFile(path, "")
	if err != nil {
		t.Fatal(err)
	}
	seqN, err := essio.CopyTrace(essio.TeeSinks(seqSum, seqInter, seqHeat), src)
	src.Close()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		chunks, err := essio.OpenTraceFileChunks(path, workers)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]*essio.SummaryAcc, len(chunks))
		inters := make([]*essio.InterAccessAcc, len(chunks))
		heats := make([]*essio.HeatAcc, len(chunks))
		total := 0
		for i, c := range chunks {
			sums[i] = essio.NewSummaryAcc("t", res.Duration, res.Nodes)
			inters[i] = essio.NewInterAccessAcc()
			heats[i] = essio.NewHeatAcc()
			n, err := essio.CopyTrace(essio.TeeSinks(sums[i], inters[i], heats[i]), c)
			c.Close()
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
		for i := 1; i < len(chunks); i++ {
			sums[0].Merge(sums[i])
			inters[0].Merge(inters[i])
			heats[0].Merge(heats[i])
		}
		if total != seqN {
			t.Fatalf("workers=%d: chunks saw %d records, sequential saw %d", workers, total, seqN)
		}
		if got, want := sums[0].Summary(), seqSum.Summary(); got != want {
			t.Errorf("workers=%d: summary %+v != %+v", workers, got, want)
		}
		gm, gs := inters[0].Result()
		wm, ws := seqInter.Result()
		if gm != wm || gs != ws {
			t.Errorf("workers=%d: inter-access (%v, %d) != (%v, %d)", workers, gm, gs, wm, ws)
		}
		if !reflect.DeepEqual(heats[0].Heat(res.Duration), seqHeat.Heat(res.Duration)) {
			t.Errorf("workers=%d: heat diverged", workers)
		}
	}
}

// TestBatchSourceMatchesMerged pins Result.BatchSource to the merged
// slice.
func TestBatchSourceMatchesMerged(t *testing.T) {
	res, err := essio.Run(essio.SmallConfig(essio.NBody, 2))
	if err != nil {
		t.Fatal(err)
	}
	c := essio.NewTraceCollector(len(res.Merged))
	n, err := essio.CopyTraceBatches(c, res.BatchSource())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(res.Merged) || !reflect.DeepEqual(c.Recs, res.Merged) {
		t.Fatalf("batch source streamed %d records, merged has %d", n, len(res.Merged))
	}
}
