// Package essio reproduces Berry & El-Ghazawi's IPPS 1996 study, "An
// Experimental Study of Input/Output Characteristics of NASA Earth and
// Space Sciences Applications", as a deterministic full-system simulation:
// a 16-node Beowulf cluster of 486 workstations, a Linux-1.x-style kernel
// I/O path (1 KB buffer cache, 4 KB demand paging, ext2-like filesystem,
// merging elevator), an instrumented IDE disk driver streaming trace
// records through a proc filesystem, and the three NASA ESS applications
// (PPM gas dynamics, wavelet image decomposition, Barnes–Hut N-body) that
// provide the workload.
//
// The package re-exports the library's public surface: run the paper's
// experiments, collect driver-level traces, and compute every table and
// figure of the evaluation.
//
// Quickstart:
//
//	res, err := essio.Run(essio.Config{Kind: essio.Wavelet, Nodes: 16})
//	if err != nil { ... }
//	fmt.Println(essio.Summarize("wavelet", res.Merged, res.Duration, res.Nodes))
//	fig, _ := essio.Figure(3, res)
//	fmt.Println(fig)
package essio

import (
	"io"

	"essio/internal/analysis"
	"essio/internal/apps/nbody"
	"essio/internal/apps/ppm"
	"essio/internal/apps/wavelet"
	"essio/internal/cluster"
	"essio/internal/core"
	"essio/internal/disk"
	"essio/internal/experiment"
	"essio/internal/iotrace"
	"essio/internal/kernel"
	"essio/internal/model"
	"essio/internal/obs"
	"essio/internal/pious"
	"essio/internal/pvm"
	"essio/internal/replay"
	"essio/internal/sim"
	"essio/internal/synth"
	"essio/internal/trace"
	"essio/internal/vfs"
)

// Experiment kinds, in paper order.
const (
	Baseline = experiment.Baseline
	PPM      = experiment.PPM
	Wavelet  = experiment.Wavelet
	NBody    = experiment.NBody
	Combined = experiment.Combined
)

// Kind selects one of the paper's experiments.
type Kind = experiment.Kind

// Kinds lists every experiment in paper order.
var Kinds = experiment.Kinds

// Config parameterizes an experiment run.
type Config = experiment.Config

// Result is a completed experiment with its traces.
type Result = experiment.Result

// Run executes one of the paper's experiments on a freshly booted cluster.
func Run(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// SmallConfig returns a scaled-down configuration for quick runs.
func SmallConfig(kind Kind, nodes int) Config { return experiment.SmallConfig(kind, nodes) }

// Repeated aggregates one experiment across several seeds.
type Repeated = experiment.Repeated

// RunSeeds executes cfg once per seed on a bounded worker pool (seeds run
// concurrently; results and aggregates are in seed order) and aggregates
// Table 1 metrics.
func RunSeeds(cfg Config, seeds []int64) (*Repeated, error) {
	return experiment.RunSeeds(cfg, seeds)
}

// IndexedError reports which config of a concurrent batch failed.
type IndexedError = experiment.IndexedError

// RunConcurrent executes several experiment configs on a bounded worker
// pool and returns results in input order; the lowest-index failure wins.
func RunConcurrent(cfgs []Config, workers int) ([]*Result, error) {
	return experiment.RunConcurrent(cfgs, workers)
}

// RunConcurrentObs is RunConcurrent with scheduler observability recorded
// into reg (runs, failures, virtual time simulated, worker occupancy).
func RunConcurrentObs(cfgs []Config, workers int, reg *ObsRegistry) ([]*Result, error) {
	return experiment.RunConcurrentObs(cfgs, workers, reg)
}

// RunAll executes one experiment per kind concurrently and returns the
// results keyed by kind; mk builds the config for each kind.
func RunAll(kinds []Kind, mk func(Kind) Config) (map[Kind]*Result, error) {
	return experiment.RunAll(kinds, mk)
}

// RunAllWorkers is RunAll on a pool of the given size; workers <= 0 uses
// GOMAXPROCS.
func RunAllWorkers(kinds []Kind, mk func(Kind) Config, workers int) (map[Kind]*Result, error) {
	return experiment.RunAllWorkers(kinds, mk, workers)
}

// Table1 renders the paper's Table 1 from a set of experiment results.
func Table1(results map[Kind]*Result) string { return experiment.Table1(results) }

// Figure renders one of the paper's Figures 1–8 as an ASCII plot.
func Figure(num int, res *Result) (string, error) { return experiment.Figure(num, res) }

// FigureSVG renders one of the paper's Figures 1–8 as an SVG document.
func FigureSVG(num int, res *Result) (string, error) { return experiment.FigureSVG(num, res) }

// KindForFigure reports which experiment a figure number requires.
func KindForFigure(num int) (Kind, error) { return experiment.KindForFigure(num) }

// SizeClassReport summarizes request-size classes and ground-truth origins.
func SizeClassReport(res *Result) string { return experiment.SizeClassReport(res) }

// LevelsReport contrasts library-level (explicit application I/O) against
// driver-level (total disk load) instrumentation for an experiment.
func LevelsReport(res *Result) string { return experiment.LevelsReport(res) }

// AppIOEvent is one application-visible file operation.
type AppIOEvent = vfs.IOEvent

// Trace records and analysis types.
type (
	// Record is one instrumented driver observation.
	Record = trace.Record
	// Origin tags the kernel mechanism behind a request.
	Origin = trace.Origin
	// Op is the read/write flag.
	Op = trace.Op
	// Summary is a Table 1 row.
	Summary = analysis.Summary
	// Point is a (time, value) observation for scatter figures.
	Point = analysis.Point
	// Band is a spatial-locality bucket.
	Band = analysis.Band
	// Heat is per-sector access frequency.
	Heat = analysis.Heat
	// Duration is virtual time (microseconds).
	Duration = sim.Duration
	// Time is absolute virtual time.
	Time = sim.Time
)

// Operation and origin constants.
const (
	Read  = trace.Read
	Write = trace.Write

	OriginData   = trace.OriginData
	OriginMeta   = trace.OriginMeta
	OriginPaging = trace.OriginPaging
	OriginSwap   = trace.OriginSwap
	OriginLog    = trace.OriginLog
	OriginTrace  = trace.OriginTrace

	// Second is one virtual second.
	Second = sim.Second
	// Minute is one virtual minute.
	Minute = sim.Minute
)

// Analysis helpers.
var (
	// Summarize builds a Table 1 row from a trace.
	Summarize = analysis.Summarize
	// SizeSeries extracts request-size-vs-time points (Figures 2–5).
	SizeSeries = analysis.SizeSeries
	// SectorSeries extracts sector-vs-time points (Figures 1 and 6).
	SectorSeries = analysis.SectorSeries
	// SizeHistogram counts requests per KB class.
	SizeHistogram = analysis.SizeHistogram
	// SpatialBands buckets requests into sector bands (Figure 7).
	SpatialBands = analysis.SpatialBands
	// Pareto reports the band fraction carrying a traffic fraction.
	Pareto = analysis.Pareto
	// TemporalHeat computes per-sector access frequency (Figure 8).
	TemporalHeat = analysis.TemporalHeat
	// Hottest returns the most frequently accessed sectors.
	Hottest = analysis.Hottest
	// InterAccess averages time between accesses to the same sector.
	InterAccess = analysis.InterAccess
	// MergeTraces combines per-node traces in time order.
	MergeTraces = trace.Merge
	// PendingStats computes driver queue-depth statistics.
	PendingStats = analysis.PendingStats
	// WriteTrace and ReadTrace are the binary trace codec;
	// WriteTraceText and ReadTraceText are the tab-separated form.
	WriteTrace     = trace.WriteAll
	ReadTrace      = trace.ReadAll
	WriteTraceText = trace.WriteText
	ReadTraceText  = trace.ReadText
)

// Streaming trace pipeline: pull Sources, push Sinks, and incremental
// analysis accumulators. One pass over a Source — a trace file, a k-way
// node merge, a Result view — can feed any number of accumulators through
// TeeSinks, in bounded memory regardless of trace length.
type (
	// TraceSource is a pull iterator over trace records (io.EOF ends it).
	TraceSource = trace.Source
	// TraceSink is a push consumer of trace records.
	TraceSink = trace.Sink
	// TraceBatchSource is a pull iterator yielding whole record buffers.
	TraceBatchSource = trace.BatchSource
	// TraceBatchSink is a push consumer of whole record buffers.
	TraceBatchSink = trace.BatchSink
	// TraceCollector is a Sink materializing the stream as a slice.
	TraceCollector = trace.Collector
	// TraceWriter is the streaming binary encoder (a Sink; call Flush).
	TraceWriter = trace.Writer
	// TraceTextWriter is the streaming text encoder (a Sink; call Flush).
	TraceTextWriter = trace.TextWriter
	// TraceColBatch is a batch of records in struct-of-arrays layout:
	// one dense slice per record field.
	TraceColBatch = trace.ColBatch
	// TraceColSource is a pull iterator over columnar batch views.
	TraceColSource = trace.ColSource
	// TraceColSink is a push consumer of columnar batch views.
	TraceColSink = trace.ColSink
	// TraceColWriter is the streaming columnar encoder (a Sink, a
	// BatchSink, and a ColSink; call Flush).
	TraceColWriter = trace.ColWriter
	// TraceColReader is the streaming columnar decoder (a Source, a
	// BatchSource, and a ColSource).
	TraceColReader = trace.ColReader

	// SummaryAcc incrementally builds a Table 1 row.
	SummaryAcc = analysis.SummaryAcc
	// SizeHistAcc incrementally counts requests per KB class.
	SizeHistAcc = analysis.SizeHistAcc
	// SizeClassAcc incrementally buckets the paper's size categories.
	SizeClassAcc = analysis.SizeClassAcc
	// OriginAcc incrementally counts ground-truth origins.
	OriginAcc = analysis.OriginAcc
	// BandsAcc incrementally builds the spatial-locality bands.
	BandsAcc = analysis.BandsAcc
	// HeatAcc incrementally counts per-sector accesses.
	HeatAcc = analysis.HeatAcc
	// InterAccessAcc incrementally averages same-sector revisit gaps.
	InterAccessAcc = analysis.InterAccessAcc
	// PendingAcc incrementally summarizes driver queue depth.
	PendingAcc = analysis.PendingAcc
	// Profiler incrementally builds a complete workload Profile.
	Profiler = core.Profiler
)

// Streaming constructors and pipeline plumbing.
var (
	// NewTraceReader decodes the binary format one record per Next.
	NewTraceReader = trace.NewReader
	// NewTraceWriter encodes the binary format incrementally.
	NewTraceWriter = trace.NewWriter
	// NewTraceTextReader parses the tab-separated format incrementally.
	NewTraceTextReader = trace.NewTextReader
	// NewTraceTextWriter writes the tab-separated format incrementally.
	NewTraceTextWriter = trace.NewTextWriter
	// SliceTraceSource adapts an in-memory trace to a Source.
	SliceTraceSource = trace.SliceSource
	// CollectTrace drains a Source into a slice.
	CollectTrace = trace.Collect
	// CollectTraceSize drains a Source into a slice pre-sized for a known
	// record count.
	CollectTraceSize = trace.CollectSize
	// NewTraceCollector returns a Collector pre-sized for a known record
	// count.
	NewTraceCollector = trace.NewCollector
	// CopyTrace pumps a Source into a Sink, moving whole batches when the
	// source supports them.
	CopyTrace = trace.Copy
	// CopyTraceBatches pumps a BatchSource into a BatchSink at batch
	// granularity.
	CopyTraceBatches = trace.CopyBatches
	// ToTraceBatchSource adapts any Source to batch reads (pass-through
	// when it already batches); FromTraceBatchSource goes the other way.
	ToTraceBatchSource   = trace.ToBatchSource
	FromTraceBatchSource = trace.FromBatchSource
	// ToTraceBatchSink adapts any Sink to batch writes (pass-through when
	// it already batches); FromTraceBatchSink goes the other way.
	ToTraceBatchSink   = trace.ToBatchSink
	FromTraceBatchSink = trace.FromBatchSink
	// NewTraceColReader decodes the columnar format incrementally.
	NewTraceColReader = trace.NewColReader
	// NewTraceColWriter encodes the columnar format incrementally.
	NewTraceColWriter = trace.NewColWriter
	// SliceTraceColSource adapts an in-memory columnar batch to a Source
	// (also a ColSource serving zero-copy column views).
	SliceTraceColSource = trace.SliceColSource
	// CopyTraceCols pumps a ColSource into a ColSink at column
	// granularity, never materializing records.
	CopyTraceCols = trace.CopyCols
	// ToTraceColSource adapts any Source to columnar reads (pass-through
	// for columnar-native sources); FromTraceColSource goes the other
	// way.
	ToTraceColSource   = trace.ToColSource
	FromTraceColSource = trace.FromColSource
	// AsTraceColSource probes a Source for a columnar-native view, the
	// zero-transpose test CopyTrace uses to pick the columnar fast path.
	AsTraceColSource = trace.AsColSource
	// WriteTraceCol and ReadTraceCol are the whole-trace columnar codec
	// conveniences, siblings of WriteTrace/ReadTrace.
	WriteTraceCol = trace.WriteCol
	ReadTraceCol  = trace.ReadCol
	// TeeSinks fans one stream out to several sinks.
	TeeSinks = trace.Tee
	// MergeTraceSources k-way-merges ordered sources in (Time, Node,
	// Sector) order, holding one record per input.
	MergeTraceSources = trace.MergeSources
	// MergeTraceSlices streams the k-way merge of in-memory traces.
	MergeTraceSlices = trace.MergeSlices

	// Accumulator constructors (each result method finalizes the metric).
	NewSummaryAcc     = analysis.NewSummaryAcc
	NewSizeHistAcc    = analysis.NewSizeHistAcc
	NewSizeClassAcc   = analysis.NewSizeClassAcc
	NewOriginAcc      = analysis.NewOriginAcc
	NewBandsAcc       = analysis.NewBandsAcc
	NewHeatAcc        = analysis.NewHeatAcc
	NewInterAccessAcc = analysis.NewInterAccessAcc
	NewPendingAcc     = analysis.NewPendingAcc
	// NewProfiler streams the full characterization in one pass.
	NewProfiler = core.NewProfiler
)

// Cluster access for custom workloads (see examples/customapp).
type (
	// Cluster is the simulated Beowulf machine.
	Cluster = cluster.Cluster
	// ClusterConfig configures the machine.
	ClusterConfig = cluster.Config
	// Program is an executable the cluster can run.
	Program = kernel.Program
	// Process is a running program instance.
	Process = kernel.Process
	// NodeConfig is a node's hardware/policy configuration.
	NodeConfig = kernel.Config
)

// NewCluster boots a cluster for custom workloads.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// DefaultNodeConfig returns the Beowulf prototype node configuration.
func DefaultNodeConfig(id uint8) NodeConfig { return kernel.DefaultConfig(id) }

// Application parameter types (the paper's three workloads).
type (
	// PPMParams configures the piecewise parabolic method code.
	PPMParams = ppm.Params
	// WaveletParams configures the wavelet decomposition code.
	WaveletParams = wavelet.Params
	// NBodyParams configures the oct-tree N-body code.
	NBodyParams = nbody.Params
)

// Default application parameters as the study configured them.
var (
	DefaultPPMParams     = ppm.DefaultParams
	DefaultWaveletParams = wavelet.DefaultParams
	DefaultNBodyParams   = nbody.DefaultParams
)

// PIOUS parallel file system and PVM message passing, for workloads that
// use coordinated parallel I/O (see examples/pious).
type (
	// Pious is the parallel file service over the cluster's node disks.
	Pious = pious.System
	// PiousFile is an open declustered file.
	PiousFile = pious.File
	// PVMTask is a message-passing endpoint.
	PVMTask = pvm.Task
	// Proc is a simulated process handle (Process.P() returns one).
	Proc = sim.Proc
)

// NewPious starts PIOUS data servers on every node of a cluster.
func NewPious(c *Cluster) *Pious {
	return pious.New(c.PVM, c.NodeFS())
}

// The workload characterizer — the study's primary contribution as a
// reusable library.
type (
	// Profile is the complete characterization of a traced workload.
	Profile = core.Profile
	// DesignParams is the tuning parameter set derived from a profile.
	DesignParams = core.DesignParams
)

// Characterize computes a full workload profile from a merged trace.
func Characterize(label string, recs []Record, duration Duration, nodes int, diskSectors uint32) *Profile {
	return core.Characterize(label, recs, duration, nodes, diskSectors)
}

// CharacterizeResult profiles a completed experiment.
func CharacterizeResult(res *Result) *Profile {
	return core.Characterize(string(res.Kind), res.Merged, res.Duration, res.Nodes, res.DiskSectors)
}

// ProfileParallel computes the same Profile as Characterize of the merged
// per-node traces, sharding the nodes across workers (workers <= 0 uses
// GOMAXPROCS). The result is deterministic and identical to the
// sequential pass.
func ProfileParallel(label string, perNode [][]Record, duration Duration, nodes int, diskSectors uint32, workers int) *Profile {
	return core.ProfileParallel(label, perNode, duration, nodes, diskSectors, workers)
}

// ProfileParallelObs is ProfileParallel with pipeline observability: each
// worker collects into a private registry at reg's level, merged into reg
// after the workers join, so the metrics are byte-identical at any worker
// count. A nil reg runs unobserved.
func ProfileParallelObs(label string, perNode [][]Record, duration Duration, nodes int, diskSectors uint32, workers int, reg *ObsRegistry) *Profile {
	return core.ProfileParallelObs(label, perNode, duration, nodes, diskSectors, workers, reg)
}

// CharacterizeResultParallel profiles a completed experiment on several
// cores, producing exactly CharacterizeResult's profile.
func CharacterizeResultParallel(res *Result, workers int) *Profile {
	return core.ProfileParallel(string(res.Kind), res.PerNode, res.Duration, res.Nodes, res.DiskSectors, workers)
}

// Trace replay against alternative configurations (tuning evaluation).
type (
	// ReplayConfig selects the hardware/queue configuration to replay
	// a captured trace against.
	ReplayConfig = replay.Config
	// ReplayReport summarizes a replay.
	ReplayReport = replay.Report
	// DiskParams describes a drive model.
	DiskParams = disk.Params
)

// ReplayTrace re-executes a captured trace against cfg.
func ReplayTrace(recs []Record, cfg ReplayConfig) (ReplayReport, error) {
	return replay.Replay(recs, cfg)
}

// DefaultDiskParams is the Beowulf node drive model.
func DefaultDiskParams() DiskParams { return disk.DefaultParams() }

// Trace file access: the shared open/sniff path of essanalyze, essreplay,
// and esssynth.
type (
	// TraceFileSource is a Source reading a trace file (call Close).
	TraceFileSource = trace.FileSource
	// TraceReaderSource is a Source decoding any io.Reader without
	// seeking (stdin pipelines, network streams, HTTP bodies).
	TraceReaderSource = trace.ReaderSource
)

// NewTraceReaderSource wraps an io.Reader as a streaming trace source;
// format is "bin", "text", "col", or "auto"/"" to sniff the encoding by
// peeking (no Seek required). It is the ingest path of the essd daemon
// and the `-i -` stdin path of essanalyze/essreplay.
func NewTraceReaderSource(r io.Reader, format string) (*TraceReaderSource, error) {
	return trace.NewReaderSource(r, format)
}

// Trace file format names for OpenTraceFile.
const (
	TraceFormatBinary = trace.FormatBinary
	TraceFormatText   = trace.FormatText
	TraceFormatCol    = trace.FormatCol
	TraceFormatAuto   = trace.FormatAuto
)

// OpenTraceFile opens a trace file as a streaming source; format is
// "bin", "text", "col", or "auto"/"" to sniff the encoding. Columnar
// files are memory-mapped where the platform allows, yielding zero-copy
// column views.
func OpenTraceFile(path, format string) (*TraceFileSource, error) {
	return trace.OpenFileSource(path, format)
}

// OpenTraceFileChunks opens a binary trace file as n record-aligned,
// time-contiguous chunk sources covering the file in order, so workers
// can analyze one file in parallel and fold their accumulators back
// together with the exact Merge methods. It fails for text- or
// columnar-encoded and truncated files; callers fall back to the
// sequential OpenTraceFile path (for columnar files that fallback is the
// mmap-backed fast path).
func OpenTraceFileChunks(path string, n int) ([]*TraceFileSource, error) {
	return trace.OpenFileChunks(path, n)
}

// Workload modeling and synthetic trace generation: fit a generative
// WorkloadModel from any trace source in one streaming pass, sample
// unbounded synthetic traces from it with scaling knobs, and measure how
// far two workloads diverge (see cmd/esssynth and examples/synthesis).
type (
	// WorkloadModel is a fitted, JSON-serializable workload description.
	WorkloadModel = model.WorkloadModel
	// ModelHistBin is one value/probability cell of a model histogram.
	ModelHistBin = model.HistBin
	// ModelOrigin is one component of the per-origin request mixture.
	ModelOrigin = model.OriginModel
	// ModelBand is one spatial band of the fitted placement distribution.
	ModelBand = model.BandModel
	// ModelArrival is the fitted burst-modulated arrival process.
	ModelArrival = model.ArrivalModel
	// ModelFitter is a Sink that fits a WorkloadModel incrementally.
	ModelFitter = model.Fitter
	// ModelDistanceReport quantifies divergence between two models.
	ModelDistanceReport = model.DistanceReport
	// ModelTolerance bounds an acceptable ModelDistanceReport.
	ModelTolerance = model.Tolerance
	// SynthOptions scales a synthetic trace generator.
	SynthOptions = synth.Options
	// SynthGenerator is a seeded deterministic synthetic trace Source.
	SynthGenerator = synth.Generator
)

// NewModelFitter returns a streaming Sink fitting a WorkloadModel; pass
// nodes 0 to infer the node count and bandSectors 0 for the paper's
// 100000-sector bands.
func NewModelFitter(label string, nodes int, diskSectors, bandSectors uint32) *ModelFitter {
	return model.NewFitter(label, nodes, diskSectors, bandSectors)
}

// FitModel drains a trace source into a fitted WorkloadModel.
func FitModel(label string, src TraceSource, nodes int, diskSectors, bandSectors uint32) (*WorkloadModel, error) {
	return model.Fit(label, src, nodes, diskSectors, bandSectors)
}

// FitModelSlice fits a WorkloadModel from an in-memory trace.
func FitModelSlice(label string, recs []Record, nodes int, diskSectors, bandSectors uint32) *WorkloadModel {
	return model.FitSlice(label, recs, nodes, diskSectors, bandSectors)
}

// ReadModelJSON decodes and validates a WorkloadModel JSON document.
func ReadModelJSON(r io.Reader) (*WorkloadModel, error) { return model.ReadJSON(r) }

// ModelDistance compares two workload models: KS distances on size and
// inter-arrival distributions, chi-square on spatial bands, relative
// errors on mix and rate.
func ModelDistance(a, b *WorkloadModel) ModelDistanceReport { return model.Distance(a, b) }

// DefaultModelTolerance bounds a routine fit-generate-refit round trip.
func DefaultModelTolerance() ModelTolerance { return model.DefaultTolerance() }

// NewSynth builds a seeded deterministic generator sampling the model; a
// zero Duration streams without bound.
func NewSynth(m *WorkloadModel, opts SynthOptions) (*SynthGenerator, error) {
	return synth.New(m, opts)
}

// GenerateSynth samples n records from the model as an in-memory trace.
func GenerateSynth(m *WorkloadModel, opts SynthOptions, n int) ([]Record, error) {
	return synth.Generate(m, opts, n)
}

// DurationOf converts seconds to virtual Duration.
func DurationOf(seconds float64) Duration { return sim.DurationOf(seconds) }

// Observability: the deterministic metric layer (counters, gauges,
// fixed-bucket histograms, pipeline stage tracing) behind Result.Obs, the
// /proc metrics files, and cmd/essmon. See internal/obs for the design.
type (
	// ObsLevel is the run-time metric collection level.
	ObsLevel = obs.Level
	// ObsRegistry is one collection domain's named metric set.
	ObsRegistry = obs.Registry
	// MetricSnapshot is a registry's sorted state at one moment; it
	// renders as Prometheus text or JSON and merges exactly.
	MetricSnapshot = obs.Snapshot
)

// Metric collection levels, in the spirit of the study's ioctl knob.
const (
	ObsOff      = obs.Off
	ObsCounters = obs.Counters
	ObsFull     = obs.Full
	ObsTrace    = obs.Trace
)

var (
	// NewObsRegistry returns an empty registry collecting at a level.
	NewObsRegistry = obs.New
	// ParseObsLevel maps "off"/"counters"/"full"/"trace" to an ObsLevel.
	ParseObsLevel = obs.ParseLevel
	// ParseMetricJSON reads a snapshot rendered by MetricSnapshot.JSON.
	ParseMetricJSON = obs.ParseJSON
)

// Per-request causal I/O tracing (obs level Trace): the deterministic
// event journal behind Result.IOTrace, the Chrome trace-event export,
// and the latency-breakdown / critical-path lenses. See
// internal/iotrace for the design.
type (
	// IOTraceEvent is one journaled span or instant of a request journey.
	IOTraceEvent = iotrace.Event
	// IOTraceStage identifies the I/O stack layer an event came from.
	IOTraceStage = iotrace.Stage
	// IOTraceBreakdown is the per-request latency breakdown lens,
	// aggregated into the paper's request size classes.
	IOTraceBreakdown = iotrace.Breakdown
	// IOTraceCriticalPath is the multi-node critical-path lens.
	IOTraceCriticalPath = iotrace.CriticalPath
)

var (
	// WriteChromeTrace renders a merged journal as Chrome trace-event
	// JSON, loadable in Perfetto. Byte-identical at any shard/worker
	// count for a given seed and config.
	WriteChromeTrace = iotrace.WriteChrome
	// MergeIOTrace folds per-node event slices into the (Time, Node,
	// Seq) total order.
	MergeIOTrace = iotrace.Merge
	// ComputeIOBreakdown aggregates a journal into per-size-class
	// latency breakdown rows.
	ComputeIOBreakdown = iotrace.ComputeBreakdown
	// ComputeIOCriticalPath extracts the span chain bounding a phase's
	// elapsed time.
	ComputeIOCriticalPath = iotrace.ComputeCriticalPath
)
